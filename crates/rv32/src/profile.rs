//! Execution profiling: per-class instruction and cycle counters.
//!
//! Both simulators (RISC-V here, ARM in `iw-armv7m`) classify every retired
//! instruction into an [`InstrClass`] and accumulate an [`ExecProfile`], so
//! kernel-level questions — *how many cycles go to loads vs MACs vs the
//! activation's division?* — can be answered per platform.

/// Coarse instruction classes shared by both ISAs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Plain integer ALU / moves / compares.
    Alu,
    /// Memory loads.
    Load,
    /// Memory stores.
    Store,
    /// 32-bit multiplies (including high-half).
    Mul,
    /// Divides / remainders.
    Div,
    /// Taken branches.
    BranchTaken,
    /// Not-taken branches.
    BranchNotTaken,
    /// Unconditional jumps / calls.
    Jump,
    /// DSP ops: MAC, clip, min/max, saturate, dual-MAC.
    Dsp,
    /// Packed-SIMD operations.
    Simd,
    /// Hardware-loop setup.
    LoopSetup,
    /// Floating-point operations (VFP).
    Float,
    /// System (ecall/ebreak/bkpt/fence).
    System,
}

impl InstrClass {
    /// All classes, in display order.
    pub const ALL: [InstrClass; 13] = [
        InstrClass::Alu,
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::Mul,
        InstrClass::Div,
        InstrClass::BranchTaken,
        InstrClass::BranchNotTaken,
        InstrClass::Jump,
        InstrClass::Dsp,
        InstrClass::Simd,
        InstrClass::LoopSetup,
        InstrClass::Float,
        InstrClass::System,
    ];

    fn index(self) -> usize {
        match self {
            InstrClass::Alu => 0,
            InstrClass::Load => 1,
            InstrClass::Store => 2,
            InstrClass::Mul => 3,
            InstrClass::Div => 4,
            InstrClass::BranchTaken => 5,
            InstrClass::BranchNotTaken => 6,
            InstrClass::Jump => 7,
            InstrClass::Dsp => 8,
            InstrClass::Simd => 9,
            InstrClass::LoopSetup => 10,
            InstrClass::Float => 11,
            InstrClass::System => 12,
        }
    }

    /// Short display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            InstrClass::Alu => "alu",
            InstrClass::Load => "load",
            InstrClass::Store => "store",
            InstrClass::Mul => "mul",
            InstrClass::Div => "div",
            InstrClass::BranchTaken => "br-taken",
            InstrClass::BranchNotTaken => "br-fall",
            InstrClass::Jump => "jump",
            InstrClass::Dsp => "dsp",
            InstrClass::Simd => "simd",
            InstrClass::LoopSetup => "hwloop",
            InstrClass::Float => "float",
            InstrClass::System => "system",
        }
    }
}

/// Counters for one class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Instructions retired in this class.
    pub instructions: u64,
    /// Base cycles attributed to this class (memory stalls are charged by
    /// the SoC model and are *not* included here).
    pub cycles: u64,
}

/// A per-class execution profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecProfile {
    slots: [ClassStats; 13],
}

impl ExecProfile {
    /// Creates an empty profile.
    #[must_use]
    pub fn new() -> ExecProfile {
        ExecProfile::default()
    }

    /// Records one retired instruction.
    pub fn record(&mut self, class: InstrClass, cycles: u32) {
        let slot = &mut self.slots[class.index()];
        slot.instructions += 1;
        slot.cycles += u64::from(cycles);
    }

    /// Counters for one class.
    #[must_use]
    pub fn class(&self, class: InstrClass) -> ClassStats {
        self.slots[class.index()]
    }

    /// Adds another profile into this one (cluster aggregation).
    pub fn merge(&mut self, other: &ExecProfile) {
        for (a, b) in self.slots.iter_mut().zip(&other.slots) {
            a.instructions += b.instructions;
            a.cycles += b.cycles;
        }
    }

    /// Totals across all classes.
    #[must_use]
    pub fn total(&self) -> ClassStats {
        let mut t = ClassStats::default();
        for s in &self.slots {
            t.instructions += s.instructions;
            t.cycles += s.cycles;
        }
        t
    }

    /// `(class, stats)` pairs with nonzero instruction counts, descending
    /// by cycles.
    #[must_use]
    pub fn breakdown(&self) -> Vec<(InstrClass, ClassStats)> {
        let mut v: Vec<(InstrClass, ClassStats)> = InstrClass::ALL
            .into_iter()
            .map(|c| (c, self.class(c)))
            .filter(|(_, s)| s.instructions > 0)
            .collect();
        v.sort_by_key(|(_, s)| core::cmp::Reverse(s.cycles));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut p = ExecProfile::new();
        p.record(InstrClass::Load, 2);
        p.record(InstrClass::Load, 2);
        p.record(InstrClass::Div, 35);
        assert_eq!(p.class(InstrClass::Load).instructions, 2);
        assert_eq!(p.class(InstrClass::Load).cycles, 4);
        assert_eq!(p.total().instructions, 3);
        assert_eq!(p.total().cycles, 39);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ExecProfile::new();
        a.record(InstrClass::Alu, 1);
        let mut b = ExecProfile::new();
        b.record(InstrClass::Alu, 1);
        b.record(InstrClass::Simd, 1);
        a.merge(&b);
        assert_eq!(a.class(InstrClass::Alu).instructions, 2);
        assert_eq!(a.class(InstrClass::Simd).instructions, 1);
    }

    #[test]
    fn breakdown_sorted_by_cycles() {
        let mut p = ExecProfile::new();
        p.record(InstrClass::Alu, 1);
        p.record(InstrClass::Div, 35);
        let b = p.breakdown();
        assert_eq!(b[0].0, InstrClass::Div);
        assert_eq!(b.len(), 2);
    }
}
