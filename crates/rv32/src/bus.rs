//! Memory-bus abstraction used by the CPU core.

use crate::instr::MemWidth;

/// Error for an access that no device claims or that a device rejects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusError {
    /// Faulting address.
    pub addr: u32,
    /// `true` for stores, `false` for loads/fetches.
    pub write: bool,
}

impl core::fmt::Display for BusError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "bus fault: {} at {:#010x}",
            if self.write { "store" } else { "load" },
            self.addr
        )
    }
}

impl std::error::Error for BusError {}

/// A data/instruction bus.
///
/// Loads return the raw (zero-extended) bytes; sign extension is performed by
/// the CPU. Implementations can be passed as `&mut B` thanks to the blanket
/// impl for mutable references.
pub trait Bus {
    /// Reads `width.bytes()` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] if the address is unmapped.
    fn load(&mut self, addr: u32, width: MemWidth) -> Result<u32, BusError>;

    /// Writes the low `width.bytes()` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] if the address is unmapped or read-only.
    fn store(&mut self, addr: u32, width: MemWidth, value: u32) -> Result<(), BusError>;

    /// Instruction fetch. Defaults to a plain word load; timing models treat
    /// fetches as free (warm-cache assumption, as in the paper's
    /// measurements).
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] if the address is unmapped.
    fn fetch(&mut self, addr: u32) -> Result<u32, BusError> {
        self.load(addr, MemWidth::W)
    }
}

impl<B: Bus + ?Sized> Bus for &mut B {
    fn load(&mut self, addr: u32, width: MemWidth) -> Result<u32, BusError> {
        (**self).load(addr, width)
    }
    fn store(&mut self, addr: u32, width: MemWidth, value: u32) -> Result<(), BusError> {
        (**self).store(addr, width, value)
    }
    fn fetch(&mut self, addr: u32) -> Result<u32, BusError> {
        (**self).fetch(addr)
    }
}

/// A flat RAM region with a base address.
///
/// # Examples
///
/// ```
/// use iw_rv32::{Bus, Ram, MemWidth};
/// let mut ram = Ram::new(0x1000, 64);
/// ram.store(0x1008, MemWidth::W, 0xdead_beef)?;
/// assert_eq!(ram.load(0x1008, MemWidth::Hu)?, 0xbeef);
/// # Ok::<(), iw_rv32::BusError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ram {
    base: u32,
    data: Vec<u8>,
}

impl Ram {
    /// Creates a zero-filled RAM of `size` bytes starting at `base`.
    #[must_use]
    pub fn new(base: u32, size: usize) -> Ram {
        Ram {
            base,
            data: vec![0; size],
        }
    }

    /// Base address of the region.
    #[must_use]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size of the region in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Whether `addr` (for an access of `len` bytes) lies inside the region.
    #[must_use]
    pub fn contains(&self, addr: u32, len: u32) -> bool {
        addr >= self.base && (addr - self.base) as usize + len as usize <= self.data.len()
    }

    /// Copies `bytes` into the RAM starting at absolute address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range falls outside the region.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        let off = (addr - self.base) as usize;
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
    }

    /// Reads `len` bytes starting at absolute address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range falls outside the region.
    #[must_use]
    pub fn read_bytes(&self, addr: u32, len: usize) -> &[u8] {
        let off = (addr - self.base) as usize;
        &self.data[off..off + len]
    }
}

impl Bus for Ram {
    fn load(&mut self, addr: u32, width: MemWidth) -> Result<u32, BusError> {
        let n = width.bytes();
        if !self.contains(addr, n) {
            return Err(BusError { addr, write: false });
        }
        let off = (addr - self.base) as usize;
        let mut v = 0u32;
        for i in 0..n as usize {
            v |= u32::from(self.data[off + i]) << (8 * i);
        }
        Ok(v)
    }

    fn store(&mut self, addr: u32, width: MemWidth, value: u32) -> Result<(), BusError> {
        let n = width.bytes();
        if !self.contains(addr, n) {
            return Err(BusError { addr, write: true });
        }
        let off = (addr - self.base) as usize;
        for i in 0..n as usize {
            self.data[off + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_roundtrip_little_endian() {
        let mut ram = Ram::new(0, 16);
        ram.store(0, MemWidth::W, 0x0403_0201).unwrap();
        assert_eq!(ram.load(0, MemWidth::B).unwrap(), 0x01);
        assert_eq!(ram.load(1, MemWidth::B).unwrap(), 0x02);
        assert_eq!(ram.load(2, MemWidth::Hu).unwrap(), 0x0403);
    }

    #[test]
    fn ram_out_of_range_faults() {
        let mut ram = Ram::new(0x100, 8);
        assert!(ram.load(0x0, MemWidth::W).is_err());
        assert!(ram.load(0x106, MemWidth::W).is_err());
        assert!(ram.store(0x108, MemWidth::B, 0).is_err());
        assert!(ram.load(0x104, MemWidth::W).is_ok());
    }

    #[test]
    fn write_read_bytes() {
        let mut ram = Ram::new(0x10, 8);
        ram.write_bytes(0x12, &[1, 2, 3]);
        assert_eq!(ram.read_bytes(0x12, 3), &[1, 2, 3]);
    }
}
