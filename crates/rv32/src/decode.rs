//! Decoding of 32-bit instruction words back into [`Instr`].

use crate::encode::{
    F7_CLIP, F7_MACMSU, F7_MULDIV, F7_PULPALU, OP_AUIPC, OP_BRANCH, OP_HWLOOP, OP_JAL, OP_JALR,
    OP_LOAD, OP_LOADPOST, OP_LUI, OP_MISCMEM, OP_OP, OP_OPIMM, OP_SIMD, OP_STORE, OP_STOREPOST,
    OP_SYSTEM,
};
use crate::instr::{
    AluImmOp, AluOp, BranchCond, Instr, LoopIdx, MemWidth, PulpAluOp, Reg, ShiftOp, SimdOp,
};

/// Error returned when a word does not decode to a supported instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The raw instruction word.
    pub word: u32,
    /// The address it was fetched from, if known.
    pub addr: Option<u32>,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.addr {
            Some(a) => write!(f, "illegal instruction {:#010x} at {:#010x}", self.word, a),
            None => write!(f, "illegal instruction {:#010x}", self.word),
        }
    }
}

impl std::error::Error for DecodeError {}

fn rd(word: u32) -> Reg {
    Reg::new(((word >> 7) & 0x1f) as u8)
}

fn rs1(word: u32) -> Reg {
    Reg::new(((word >> 15) & 0x1f) as u8)
}

fn rs2(word: u32) -> Reg {
    Reg::new(((word >> 20) & 0x1f) as u8)
}

fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}

fn funct7(word: u32) -> u32 {
    word >> 25
}

fn imm_i(word: u32) -> i32 {
    (word as i32) >> 20
}

fn imm_s(word: u32) -> i32 {
    (((word & 0xfe00_0000) as i32) >> 20) | (((word >> 7) & 0x1f) as i32)
}

fn imm_b(word: u32) -> i32 {
    let sign = ((word as i32) >> 31) << 12;
    let b11 = (((word >> 7) & 1) << 11) as i32;
    let b10_5 = (((word >> 25) & 0x3f) << 5) as i32;
    let b4_1 = (((word >> 8) & 0xf) << 1) as i32;
    sign | b11 | b10_5 | b4_1
}

fn imm_u(word: u32) -> i32 {
    (word & 0xffff_f000) as i32
}

fn imm_j(word: u32) -> i32 {
    let sign = ((word as i32) >> 31) << 20;
    let b19_12 = ((word >> 12) & 0xff) << 12;
    let b11 = ((word >> 20) & 1) << 11;
    let b10_1 = ((word >> 21) & 0x3ff) << 1;
    sign | (b19_12 | b11 | b10_1) as i32
}

fn load_width(f3: u32) -> Option<MemWidth> {
    match f3 {
        0b000 => Some(MemWidth::B),
        0b001 => Some(MemWidth::H),
        0b010 => Some(MemWidth::W),
        0b100 => Some(MemWidth::Bu),
        0b101 => Some(MemWidth::Hu),
        _ => None,
    }
}

fn store_width(f3: u32) -> Option<MemWidth> {
    match f3 {
        0b000 => Some(MemWidth::B),
        0b001 => Some(MemWidth::H),
        0b010 => Some(MemWidth::W),
        _ => None,
    }
}

fn loop_idx(word: u32) -> Option<LoopIdx> {
    match (word >> 7) & 0x1f {
        0 => Some(LoopIdx::L0),
        1 => Some(LoopIdx::L1),
        _ => None,
    }
}

/// Decodes a 32-bit word into an [`Instr`].
///
/// # Errors
///
/// Returns [`DecodeError`] for any word outside the supported RV32IM + Xpulp
/// subset.
///
/// # Examples
///
/// ```
/// use iw_rv32::{decode, Instr, Reg, AluImmOp};
/// let instr = decode(0x02a0_0513)?;
/// assert_eq!(
///     instr,
///     Instr::AluImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::ZERO, imm: 42 }
/// );
/// # Ok::<(), iw_rv32::DecodeError>(())
/// ```
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let err = DecodeError { word, addr: None };
    let opcode = word & 0x7f;
    let f3 = funct3(word);
    let f7 = funct7(word);
    Ok(match opcode {
        OP_LUI => Instr::Lui {
            rd: rd(word),
            imm: imm_u(word),
        },
        OP_AUIPC => Instr::Auipc {
            rd: rd(word),
            imm: imm_u(word),
        },
        OP_JAL => Instr::Jal {
            rd: rd(word),
            offset: imm_j(word),
        },
        OP_JALR if f3 == 0 => Instr::Jalr {
            rd: rd(word),
            rs1: rs1(word),
            offset: imm_i(word),
        },
        OP_BRANCH => {
            let cond = match f3 {
                0b000 => BranchCond::Eq,
                0b001 => BranchCond::Ne,
                0b100 => BranchCond::Lt,
                0b101 => BranchCond::Ge,
                0b110 => BranchCond::Ltu,
                0b111 => BranchCond::Geu,
                _ => return Err(err),
            };
            Instr::Branch {
                cond,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: imm_b(word),
            }
        }
        OP_LOAD => Instr::Load {
            width: load_width(f3).ok_or(err)?,
            rd: rd(word),
            rs1: rs1(word),
            offset: imm_i(word),
        },
        OP_STORE => Instr::Store {
            width: store_width(f3).ok_or(err)?,
            rs2: rs2(word),
            rs1: rs1(word),
            offset: imm_s(word),
        },
        OP_OPIMM => match f3 {
            0b001 => Instr::Shift {
                op: ShiftOp::Slli,
                rd: rd(word),
                rs1: rs1(word),
                shamt: rs2(word).index(),
            },
            0b101 => {
                let op = match f7 {
                    0b000_0000 => ShiftOp::Srli,
                    0b010_0000 => ShiftOp::Srai,
                    _ => return Err(err),
                };
                Instr::Shift {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    shamt: rs2(word).index(),
                }
            }
            _ => {
                let op = match f3 {
                    0b000 => AluImmOp::Addi,
                    0b010 => AluImmOp::Slti,
                    0b011 => AluImmOp::Sltiu,
                    0b100 => AluImmOp::Xori,
                    0b110 => AluImmOp::Ori,
                    0b111 => AluImmOp::Andi,
                    _ => return Err(err),
                };
                Instr::AluImm {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    imm: imm_i(word),
                }
            }
        },
        OP_OP => match f7 {
            0b000_0000 | 0b010_0000 => {
                let op = match (f3, f7) {
                    (0b000, 0b000_0000) => AluOp::Add,
                    (0b000, 0b010_0000) => AluOp::Sub,
                    (0b001, 0b000_0000) => AluOp::Sll,
                    (0b010, 0b000_0000) => AluOp::Slt,
                    (0b011, 0b000_0000) => AluOp::Sltu,
                    (0b100, 0b000_0000) => AluOp::Xor,
                    (0b101, 0b000_0000) => AluOp::Srl,
                    (0b101, 0b010_0000) => AluOp::Sra,
                    (0b110, 0b000_0000) => AluOp::Or,
                    (0b111, 0b000_0000) => AluOp::And,
                    _ => return Err(err),
                };
                Instr::Alu {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: rs2(word),
                }
            }
            F7_MULDIV => {
                let op = match f3 {
                    0b000 => AluOp::Mul,
                    0b001 => AluOp::Mulh,
                    0b010 => AluOp::Mulhsu,
                    0b011 => AluOp::Mulhu,
                    0b100 => AluOp::Div,
                    0b101 => AluOp::Divu,
                    0b110 => AluOp::Rem,
                    0b111 => AluOp::Remu,
                    _ => unreachable!(),
                };
                Instr::Alu {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: rs2(word),
                }
            }
            F7_MACMSU => match f3 {
                0b000 => Instr::Mac {
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: rs2(word),
                },
                0b001 => Instr::Msu {
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: rs2(word),
                },
                _ => return Err(err),
            },
            F7_CLIP if f3 == 0b001 => Instr::Clip {
                rd: rd(word),
                rs1: rs1(word),
                bits: rs2(word).index(),
            },
            F7_PULPALU => {
                let op = match f3 {
                    0b000 => PulpAluOp::Abs,
                    0b010 => PulpAluOp::Exths,
                    0b011 => PulpAluOp::Extuh,
                    0b100 => PulpAluOp::Min,
                    0b101 => PulpAluOp::Max,
                    0b110 => PulpAluOp::Minu,
                    0b111 => PulpAluOp::Maxu,
                    _ => return Err(err),
                };
                Instr::PulpAlu {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: rs2(word),
                }
            }
            _ => return Err(err),
        },
        OP_SYSTEM if f3 == 0 => match imm_i(word) {
            0 => Instr::Ecall,
            1 => Instr::Ebreak,
            _ => return Err(err),
        },
        OP_MISCMEM => Instr::Fence,
        OP_LOADPOST => Instr::LoadPost {
            width: load_width(f3).ok_or(err)?,
            rd: rd(word),
            rs1: rs1(word),
            offset: imm_i(word),
        },
        OP_STOREPOST => Instr::StorePost {
            width: store_width(f3).ok_or(err)?,
            rs2: rs2(word),
            rs1: rs1(word),
            offset: imm_s(word),
        },
        OP_SIMD if f3 == 0 => {
            let op = match f7 {
                0b000_0000 => SimdOp::AddH,
                0b000_0100 => SimdOp::SubH,
                0b001_0000 => SimdOp::MinH,
                0b001_1000 => SimdOp::MaxH,
                0b100_1100 => SimdOp::DotspH,
                0b101_0100 => SimdOp::SdotspH,
                0b111_0000 => SimdOp::PackH,
                _ => return Err(err),
            };
            Instr::Simd {
                op,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
            }
        }
        OP_HWLOOP => {
            let l = loop_idx(word).ok_or(err)?;
            match f3 {
                0b000 => Instr::LpStarti {
                    l,
                    offset: imm_i(word) * 2,
                },
                0b001 => Instr::LpEndi {
                    l,
                    offset: imm_i(word) * 2,
                },
                0b010 => Instr::LpCount { l, rs1: rs1(word) },
                0b011 => Instr::LpCounti {
                    l,
                    count: (imm_i(word) & 0xfff) as u16,
                },
                0b100 => Instr::LpSetup {
                    l,
                    rs1: rs1(word),
                    offset: imm_i(word) * 2,
                },
                0b101 => Instr::LpSetupi {
                    l,
                    count: rs1(word).index(),
                    offset: imm_i(word) * 2,
                },
                _ => return Err(err),
            }
        }
        _ => return Err(err),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::instr::Reg;

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(0xffff_ffff).is_err());
        assert!(decode(0x0000_0000).is_err());
    }

    #[test]
    fn roundtrip_spot_checks() {
        let cases = [
            Instr::Lui {
                rd: Reg::A0,
                imm: 0x12345 << 12,
            },
            Instr::Jal {
                rd: Reg::RA,
                offset: -2048,
            },
            Instr::Branch {
                cond: BranchCond::Geu,
                rs1: Reg::T0,
                rs2: Reg::T1,
                offset: 4094,
            },
            Instr::Load {
                width: MemWidth::Hu,
                rd: Reg::S3,
                rs1: Reg::GP,
                offset: -1,
            },
            Instr::Shift {
                op: ShiftOp::Srai,
                rd: Reg::A3,
                rs1: Reg::A3,
                shamt: 13,
            },
            Instr::Mac {
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
            Instr::Clip {
                rd: Reg::A0,
                rs1: Reg::A1,
                bits: 16,
            },
            Instr::Simd {
                op: SimdOp::SdotspH,
                rd: Reg::S0,
                rs1: Reg::S1,
                rs2: Reg::S2,
            },
            Instr::LpSetup {
                l: LoopIdx::L1,
                rs1: Reg::T2,
                offset: 64,
            },
            Instr::LpCounti {
                l: LoopIdx::L0,
                count: 4095,
            },
            Instr::LoadPost {
                width: MemWidth::H,
                rd: Reg::A4,
                rs1: Reg::A5,
                offset: 2,
            },
            Instr::StorePost {
                width: MemWidth::W,
                rs2: Reg::A4,
                rs1: Reg::A5,
                offset: 4,
            },
        ];
        for instr in cases {
            let word = encode(&instr).unwrap();
            let back = decode(word).unwrap();
            assert_eq!(back, instr, "word {word:#010x}");
        }
    }

    #[test]
    fn decode_error_displays_address() {
        let e = DecodeError {
            word: 0xdead_beef,
            addr: Some(0x100),
        };
        assert!(e.to_string().contains("0x00000100"));
    }
}
