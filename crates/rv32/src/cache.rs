//! PC-indexed cache of pre-decoded instructions.
//!
//! The interpreter's hot loop otherwise pays a `fetch` + [`decode`] pair
//! for every *dynamic* instruction. A [`DecodeCache`] moves that cost to
//! once per *static* instruction: a direct-mapped array of decoded
//! [`Instr`] values spanning a word-aligned window of the program region,
//! filled lazily on first execution.
//!
//! Coherence: callers must report every store through
//! [`DecodeCache::invalidate_store`], which drops every line whose word
//! the byte range `[addr, addr + width)` overlaps. The CPU itself only
//! issues naturally aligned stores (it faults otherwise), so a store
//! from *this* core touches one word — but the invalidation API takes
//! the width and walks the full span so that callers reporting writes
//! from other agents (a DMA engine, another cluster core with laxer
//! alignment) cannot leave a stale line behind. Stores outside the
//! window and program counters outside the window are both legal —
//! lookups simply miss and the caller falls back to fetch + decode.

use crate::bus::Bus;
use crate::cpu::CpuError;
use crate::decode::{decode, DecodeError};
use crate::instr::{Instr, MemWidth};

/// Direct-mapped cache of pre-decoded instructions over one program window.
///
/// # Examples
///
/// ```
/// use iw_rv32::{Cpu, DecodeCache, Ram, Timing, asm::Asm, Reg};
/// let mut asm = Asm::new(0);
/// asm.li(Reg::A0, 21);
/// asm.add(Reg::A0, Reg::A0, Reg::A0);
/// asm.ecall();
/// let mut ram = Ram::new(0, 64);
/// ram.write_bytes(0, &asm.assemble()?);
/// let mut cache = DecodeCache::new(0, 64);
/// let mut cpu = Cpu::new(0);
/// let run = cpu.run_cached(&mut ram, &Timing::riscy(), 1_000, &mut cache)?;
/// assert_eq!(cpu.reg(Reg::A0), 42);
/// assert!(run.instructions > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DecodeCache {
    base: u32,
    lines: Vec<Option<Instr>>,
}

impl DecodeCache {
    /// Largest window a cache will allocate, in bytes (1 Mi instructions).
    pub const MAX_WINDOW: u32 = 4 << 20;

    /// Creates a cache covering `[base, base + len)`, rounded to word
    /// boundaries and capped at [`DecodeCache::MAX_WINDOW`] bytes.
    #[must_use]
    pub fn new(base: u32, len: u32) -> DecodeCache {
        let base = base & !3;
        let len = len.min(Self::MAX_WINDOW).min(u32::MAX - base);
        DecodeCache {
            base,
            lines: vec![None; (len / 4) as usize],
        }
    }

    /// Start of the covered window.
    #[must_use]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// `true` if `addr` falls inside the covered window.
    #[must_use]
    pub fn covers(&self, addr: u32) -> bool {
        self.line_index(addr).is_some()
    }

    #[inline]
    fn line_index(&self, addr: u32) -> Option<usize> {
        let off = addr.checked_sub(self.base)? / 4;
        ((off as usize) < self.lines.len()).then_some(off as usize)
    }

    /// Cached instruction at `pc`, if present.
    #[inline]
    #[must_use]
    pub fn get(&self, pc: u32) -> Option<Instr> {
        // Hot path: a wrapping subtract sends out-of-window pcs (including
        // pc < base) past `lines.len()`, folding the window test into the
        // slice bounds check.
        if pc & 3 != 0 {
            return None;
        }
        let off = (pc.wrapping_sub(self.base) / 4) as usize;
        self.lines.get(off).copied().flatten()
    }

    /// Returns the instruction at `pc`, decoding and caching on a miss.
    ///
    /// Program counters outside the window fall back to a plain
    /// fetch + decode without being cached.
    ///
    /// # Errors
    ///
    /// Propagates fetch faults and decode errors (tagged with `pc`).
    #[inline]
    pub fn fetch_decode<B: Bus>(&mut self, bus: &mut B, pc: u32) -> Result<Instr, CpuError> {
        if let Some(instr) = self.get(pc) {
            return Ok(instr);
        }
        let word = bus.fetch(pc)?;
        let instr = decode(word).map_err(|e| {
            CpuError::Decode(DecodeError {
                addr: Some(pc),
                ..e
            })
        })?;
        if pc.is_multiple_of(4) {
            if let Some(i) = self.line_index(pc) {
                self.lines[i] = Some(instr);
            }
        }
        Ok(instr)
    }

    /// Invalidates every line whose word a store of `width` bytes at
    /// `addr` touched.
    ///
    /// The byte range `[addr, addr + width)` can straddle a word boundary
    /// when the store is not naturally aligned (writes reported on behalf
    /// of other agents — the CPU's own stores fault on misalignment), so
    /// both the first and the last covered word are dropped; stores
    /// outside the window are no-ops. Returns whether a populated line
    /// was actually dropped — the trace layer uses this to emit
    /// invalidation instants only for stores that really punched a hole
    /// in the pre-decoded window.
    pub fn invalidate_store(&mut self, addr: u32, width: MemWidth) -> bool {
        let first = addr & !3;
        let last = addr.wrapping_add(width.bytes() - 1) & !3;
        let mut dropped = false;
        if let Some(i) = self.line_index(first) {
            dropped |= self.lines[i].take().is_some();
        }
        if last != first {
            if let Some(i) = self.line_index(last) {
                dropped |= self.lines[i].take().is_some();
            }
        }
        dropped
    }

    /// Drops every cached line.
    pub fn invalidate_all(&mut self) {
        self.lines.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::bus::Ram;
    use crate::instr::Reg;

    #[test]
    fn fills_lazily_and_hits() {
        let mut asm = Asm::new(0);
        asm.addi(Reg::A0, Reg::ZERO, 5);
        asm.ecall();
        let mut ram = Ram::new(0, 64);
        ram.write_bytes(0, &asm.assemble().unwrap());
        let mut cache = DecodeCache::new(0, 64);
        assert_eq!(cache.get(0), None);
        let i0 = cache.fetch_decode(&mut ram, 0).unwrap();
        assert_eq!(cache.get(0), Some(i0));
    }

    #[test]
    fn store_invalidates_single_line() {
        let mut asm = Asm::new(0);
        asm.addi(Reg::A0, Reg::ZERO, 5);
        asm.addi(Reg::A1, Reg::ZERO, 6);
        let mut ram = Ram::new(0, 64);
        ram.write_bytes(0, &asm.assemble().unwrap());
        let mut cache = DecodeCache::new(0, 64);
        cache.fetch_decode(&mut ram, 0).unwrap();
        cache.fetch_decode(&mut ram, 4).unwrap();
        // Byte store into the first word only drops that line.
        cache.invalidate_store(1, MemWidth::B);
        assert_eq!(cache.get(0), None);
        assert!(cache.get(4).is_some());
    }

    #[test]
    fn misaligned_store_invalidates_both_spanned_words() {
        // A word store at offset 2 overlaps bytes of words 0 and 4: both
        // cached lines must drop, or a stale decode of the second word
        // would survive the patch.
        let mut asm = Asm::new(0);
        asm.addi(Reg::A0, Reg::ZERO, 5);
        asm.addi(Reg::A1, Reg::ZERO, 6);
        let mut ram = Ram::new(0, 64);
        ram.write_bytes(0, &asm.assemble().unwrap());
        let mut cache = DecodeCache::new(0, 64);
        cache.fetch_decode(&mut ram, 0).unwrap();
        cache.fetch_decode(&mut ram, 4).unwrap();
        assert!(cache.invalidate_store(2, MemWidth::W));
        assert_eq!(cache.get(0), None);
        assert_eq!(cache.get(4), None);
    }

    #[test]
    fn spanning_store_at_window_edge_invalidates_inside_part() {
        let mut asm = Asm::new(0);
        asm.addi(Reg::A0, Reg::ZERO, 5);
        let mut ram = Ram::new(0, 64);
        ram.write_bytes(60, &asm.assemble().unwrap());
        let mut cache = DecodeCache::new(0, 64);
        cache.fetch_decode(&mut ram, 60).unwrap();
        // Spans the last cached word and the first word past the window.
        assert!(cache.invalidate_store(62, MemWidth::W));
        assert_eq!(cache.get(60), None);
    }

    #[test]
    fn out_of_window_pc_falls_back_uncached() {
        let mut asm = Asm::new(0x100);
        asm.addi(Reg::A0, Reg::ZERO, 5);
        let mut ram = Ram::new(0, 512);
        ram.write_bytes(0x100, &asm.assemble().unwrap());
        let mut cache = DecodeCache::new(0, 64); // window ends at 0x40
        assert!(!cache.covers(0x100));
        let instr = cache.fetch_decode(&mut ram, 0x100).unwrap();
        assert_eq!(cache.get(0x100), None, "fallback must not cache");
        assert_eq!(
            instr,
            crate::decode::decode(ram.load(0x100, crate::MemWidth::W).unwrap()).unwrap()
        );
    }

    #[test]
    fn misaligned_pc_is_never_cached() {
        let cache = DecodeCache::new(0, 64);
        assert_eq!(cache.get(2), None);
    }

    #[test]
    fn window_is_capped() {
        let cache = DecodeCache::new(0, u32::MAX);
        assert_eq!(cache.lines.len(), (DecodeCache::MAX_WINDOW / 4) as usize);
    }
}
