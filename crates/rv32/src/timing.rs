//! Per-instruction timing models for the two RISC-V cores of Mr. Wolf.
//!
//! The simulator is instruction-timed, not pipeline-simulated: each retired
//! instruction contributes a fixed base cost, chosen to match the published
//! micro-architectural behaviour of the cores. TCDM bank-conflict stalls are
//! added on top by the SoC model in `iw-mrwolf`.

/// Base cycle costs for one core.
///
/// # Examples
///
/// ```
/// use iw_rv32::Timing;
/// let ibex = Timing::ibex();
/// let riscy = Timing::riscy();
/// // Ibex pays two cycles per load (2-stage pipeline, no load-use bypass
/// // into the same stage); RI5CY's loads hit single-cycle TCDM.
/// assert!(ibex.load > riscy.load);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Plain ALU / LUI / AUIPC.
    pub alu: u32,
    /// 32×32 multiply (low or high half).
    pub mul: u32,
    /// Divide / remainder (worst case; data-independent here).
    pub div: u32,
    /// Load (any width), excluding memory-system stalls.
    pub load: u32,
    /// Store (any width).
    pub store: u32,
    /// Taken conditional branch.
    pub branch_taken: u32,
    /// Not-taken conditional branch.
    pub branch_not_taken: u32,
    /// Unconditional jump (`jal`, `jalr`).
    pub jump: u32,
    /// Xpulp ALU/SIMD/MAC operations.
    pub xpulp: u32,
    /// Hardware-loop setup instructions (`lp.*`). Loop back-edges are free.
    pub hwloop_setup: u32,
}

impl Timing {
    /// Timing model for the Ibex (zero-riscy) fabric controller: 2-stage
    /// pipeline, single-cycle multiplier option, iterative divider, no
    /// branch prediction (taken branches flush the prefetch buffer).
    #[must_use]
    pub fn ibex() -> Timing {
        Timing {
            alu: 1,
            mul: 1,
            div: 37,
            load: 2,
            store: 2,
            branch_taken: 3,
            branch_not_taken: 1,
            jump: 2,
            // Ibex has no Xpulp support; the CPU rejects those instructions
            // before timing is consulted. Kept at 1 for completeness.
            xpulp: 1,
            hwloop_setup: 1,
        }
    }

    /// Timing model for a RI5CY cluster core: 4-stage pipeline, single-cycle
    /// TCDM loads (absent bank conflicts), single-cycle MAC/SIMD, hardware
    /// loops with zero back-edge overhead.
    #[must_use]
    pub fn riscy() -> Timing {
        Timing {
            alu: 1,
            mul: 1,
            div: 35,
            load: 1,
            store: 1,
            branch_taken: 3,
            branch_not_taken: 1,
            jump: 2,
            xpulp: 1,
            hwloop_setup: 1,
        }
    }
}

impl Default for Timing {
    /// Defaults to the RI5CY model.
    fn default() -> Timing {
        Timing::riscy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_expected() {
        let i = Timing::ibex();
        let r = Timing::riscy();
        assert_eq!(i.alu, 1);
        assert_eq!(r.load, 1);
        assert!(i.branch_taken >= r.branch_not_taken);
        assert_eq!(Timing::default(), r);
    }
}
