//! Basic-block compilation with superinstruction fusion.
//!
//! The [`DecodeCache`](crate::DecodeCache) path still pays one dispatch
//! `match` plus cache lookup per *dynamic* instruction. This module moves
//! translation to once per *static* basic block: blocks are keyed by
//! entry PC, decoded straight from the bus into a flat array of
//! pre-resolved [`Op`] entries (a handler function pointer plus
//! immediates and register indices), and executed back to back with no
//! per-step `Instr` match. On top of the flat lowering, adjacent
//! instructions that form the inner-loop idioms of the InfiniWolf
//! kernels — post-increment load pairs feeding `pv.sdotsp.h` or `p.mac`,
//! `mul`/`srai`/`add` fixed-point chains, `addi`+branch counter tails —
//! are *fused* into single macro-op handlers, so a five-instruction loop
//! body costs one or two indirect calls instead of five matches.
//!
//! Correctness contract: every sub-instruction of every handler retires
//! through [`Cpu::retire`] with exactly the semantics of the frozen
//! reference interpreter, one at a time, so a fault, cycle-limit stop or
//! hardware-loop redirect between sub-instructions leaves architectural
//! state (registers, memory, `pc`, profile, retired count) bit-identical
//! to [`Cpu::run`]. The differential property tests in
//! `tests/proptests.rs` enforce this, including under self-modifying
//! code: stores report through [`BlockCache::invalidate_store`], which
//! demotes every compiled block covering the written word.

use std::rc::Rc;

use crate::bus::Bus;
use crate::cpu::{Cpu, CpuError, MemAccess, RunResult};
use crate::decode::{decode, DecodeError};
use crate::instr::{AluImmOp, AluOp, BranchCond, Instr, MemWidth, Reg, ShiftOp, SimdOp};
use crate::profile::InstrClass;
use crate::timing::Timing;

/// Longest block, in sub-instructions.
const MAX_BLOCK_INSTRS: usize = 32;

/// Op flag: the op (or one of its fused sub-instructions) accesses data
/// memory — the cluster scheduler must arbitrate before issuing it past
/// another core's timestamp.
const F_MEM: u8 = 1;
/// Op flag: the op halts the core (`ecall`/`ebreak`).
const F_HALT: u8 = 2;

/// How aggressively the compiler may fuse memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionLevel {
    /// Fused ops carry at most one memory access, and only as their
    /// *first* sub-instruction. This is what the multi-core lockstep
    /// scheduler needs: it arbitrates the single access at the op's
    /// issue time, exactly where the reference path would, and no sub
    /// after the first can fault (so a mid-op error never leaves
    /// partially retired state behind a shared-memory pick).
    SharedMem,
    /// Multi-load bodies fuse too (`p.lw`+`p.lw`+`pv.sdotsp.h` as one
    /// op). Only bit-exact where port arbitration cannot stall — a
    /// single core on the interconnect, or a plain flat bus.
    Full,
}

/// Result of executing one (possibly fused) block op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Exec {
    /// Base cycles of all retired sub-instructions.
    pub cycles: u32,
    /// Sub-instructions retired (< the op's width if a hardware-loop
    /// redirect or the cycle budget stopped the op early).
    pub retired: u32,
    /// First data access, performed by the first sub-instruction that
    /// touches memory (always the first sub for `SharedMem` ops).
    pub mem: Option<MemAccess>,
    /// Base cycles of the sub-instruction behind [`Exec::mem`] — the
    /// cluster model replaces these with the L2 latency for L2 hits.
    pub mem_cycles: u32,
    /// Second data access ([`FusionLevel::Full`] ops only).
    pub mem2: Option<MemAccess>,
    /// Base cycles of the sub-instruction behind [`Exec::mem2`].
    pub mem2_cycles: u32,
}

impl Exec {
    #[inline]
    fn one(cycles: u32) -> Exec {
        Exec {
            cycles,
            retired: 1,
            ..Exec::default()
        }
    }
}

type Handler<B> = fn(&mut Cpu, &mut B, &Op<B>, &Timing, u64) -> Result<Exec, CpuError>;

/// One pre-resolved entry of a compiled block: a handler pointer plus
/// the operands of up to three fused sub-instructions.
pub struct Op<B> {
    handler: Handler<B>,
    pc: u32,
    flags: u8,
    cond: BranchCond,
    /// First sub-instruction, kept decoded for the generic handler.
    instr: Instr,
    rd: Reg,
    rs1: Reg,
    rs2: Reg,
    imm: i32,
    rd2: Reg,
    rs1b: Reg,
    rs2b: Reg,
    imm2: i32,
    rd3: Reg,
    rs1c: Reg,
    rs2c: Reg,
}

fn op_base<B: Bus>(handler: Handler<B>, pc: u32, instr: Instr) -> Op<B> {
    Op {
        handler,
        pc,
        flags: 0,
        cond: BranchCond::Eq,
        instr,
        rd: Reg::ZERO,
        rs1: Reg::ZERO,
        rs2: Reg::ZERO,
        imm: 0,
        rd2: Reg::ZERO,
        rs1b: Reg::ZERO,
        rs2b: Reg::ZERO,
        imm2: 0,
        rd3: Reg::ZERO,
        rs1c: Reg::ZERO,
        rs2c: Reg::ZERO,
    }
}

/// A compiled basic block: straight-line code from its entry PC up to
/// (and including) its terminating branch/jump/halt, lowered to ops.
pub struct Block<B> {
    entry: u32,
    end: u32,
    ops: Vec<Op<B>>,
}

impl<B: Bus> Block<B> {
    /// Entry PC (address of the first sub-instruction).
    #[must_use]
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// First byte past the last sub-instruction.
    #[must_use]
    pub fn end(&self) -> u32 {
        self.end
    }

    /// Number of (possibly fused) ops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the block compiled to no ops (never produced by
    /// [`BlockCache::lookup`], which errors instead).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// PC of op `i`'s first sub-instruction.
    #[must_use]
    pub fn op_pc(&self, i: usize) -> u32 {
        self.ops[i].pc
    }

    /// `true` if op `i` accesses data memory or halts — the points where
    /// the lockstep cluster scheduler must stop a core's burst at
    /// another core's timestamp.
    #[must_use]
    pub fn op_is_sync(&self, i: usize) -> bool {
        self.ops[i].flags & (F_MEM | F_HALT) != 0
    }

    /// Executes op `i`. `budget` is the remaining base-cycle budget; the
    /// op stops (returning a partial [`Exec`]) before starting a
    /// sub-instruction once the retired sub-instructions exceed it, so
    /// the caller's cycle-limit check fires between sub-instructions
    /// exactly as the reference interpreter's would.
    ///
    /// # Errors
    ///
    /// Any fault the sub-instructions raise; sub-instructions retired
    /// before the fault remain retired, as in the reference path.
    #[inline]
    pub fn exec_op(
        &self,
        i: usize,
        cpu: &mut Cpu,
        bus: &mut B,
        timing: &Timing,
        budget: u64,
    ) -> Result<Exec, CpuError> {
        let op = &self.ops[i];
        (op.handler)(cpu, bus, op, timing, budget)
    }
}

/// Per-cache counters: compilation, fusion, lookup and dispatch-loop
/// exit statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Blocks translated (recompiles after demotion count again).
    pub blocks_compiled: u64,
    /// Ops emitted across all compiled blocks.
    pub ops_lowered: u64,
    /// Sub-instructions across all compiled blocks.
    pub instrs_compiled: u64,
    /// Lookups served by an existing block.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Blocks dropped because a store overlapped them.
    pub demotions: u64,
    /// Single-stepped instructions at PCs outside the cache window.
    pub fallback_steps: u64,
    /// `p.lw` + `p.lw` + `pv.sdotsp.h` fusions emitted.
    pub fused_lp_lp_sdotsp: u64,
    /// `p.lw` + `p.lw` fusions emitted.
    pub fused_lp_lp: u64,
    /// `p.lw` + `pv.sdotsp.h` fusions emitted.
    pub fused_lp_sdotsp: u64,
    /// `p.lw` + `p.mac` fusions emitted.
    pub fused_lp_mac: u64,
    /// `mul` + `srai` + `add` fusions emitted.
    pub fused_mul_srai_add: u64,
    /// `addi` + branch fusions emitted.
    pub fused_addi_branch: u64,
    /// Dispatch loops that ran a block to its final op.
    pub exit_fallthrough: u64,
    /// Dispatch loops broken by a PC redirect (hardware-loop back edge
    /// or partial fused op) away from the next op.
    pub exit_redirect: u64,
    /// Dispatch loops broken by `ecall`/`ebreak`.
    pub exit_halt: u64,
    /// Dispatch loops broken because a store hit the executing block.
    pub exit_smc: u64,
}

impl BlockStats {
    /// Total fused macro-ops emitted at compile time.
    #[must_use]
    pub fn fused_total(&self) -> u64 {
        self.fused_lp_lp_sdotsp
            + self.fused_lp_lp
            + self.fused_lp_sdotsp
            + self.fused_lp_mac
            + self.fused_mul_srai_add
            + self.fused_addi_branch
    }

    /// Lookup hit rate in `[0, 1]` (1.0 when there were no lookups).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1.0;
        }
        self.hits as f64 / total as f64
    }
}

/// Basic-block cache over one word-aligned program window.
///
/// # Examples
///
/// ```
/// use iw_rv32::{asm::Asm, BlockCache, Cpu, FusionLevel, Ram, Reg, Timing};
/// let mut asm = Asm::new(0);
/// asm.li(Reg::A0, 21);
/// asm.add(Reg::A0, Reg::A0, Reg::A0);
/// asm.ecall();
/// let mut ram = Ram::new(0, 64);
/// ram.write_bytes(0, &asm.assemble()?);
/// let mut cache = BlockCache::new(0, 64, true, FusionLevel::Full);
/// let mut cpu = Cpu::new(0);
/// let run = cpu.run_blocks(&mut ram, &Timing::riscy(), 1_000, &mut cache)?;
/// assert_eq!(cpu.reg(Reg::A0), 42);
/// assert!(run.instructions > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct BlockCache<B> {
    base: u32,
    xpulp: bool,
    fusion: FusionLevel,
    slots: Vec<Option<Rc<Block<B>>>>,
    covered: Vec<bool>,
    stats: BlockStats,
}

impl<B> core::fmt::Debug for BlockCache<B> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BlockCache")
            .field("base", &self.base)
            .field("words", &self.slots.len())
            .field("xpulp", &self.xpulp)
            .field("fusion", &self.fusion)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<B: Bus> BlockCache<B> {
    /// Largest window a cache will allocate, in bytes.
    pub const MAX_WINDOW: u32 = 4 << 20;

    /// Creates a cache over `[base, base + len)` (word-rounded, capped at
    /// [`BlockCache::MAX_WINDOW`]). `xpulp` must match the executing
    /// hart: on a non-Xpulp hart, Xpulp instructions compile to an op
    /// that raises [`CpuError::IllegalXpulp`], as the reference would.
    #[must_use]
    pub fn new(base: u32, len: u32, xpulp: bool, fusion: FusionLevel) -> BlockCache<B> {
        let base = base & !3;
        let len = len.min(Self::MAX_WINDOW).min(u32::MAX - base);
        let words = (len / 4) as usize;
        BlockCache {
            base,
            xpulp,
            fusion,
            slots: vec![None; words],
            covered: vec![false; words],
            stats: BlockStats::default(),
        }
    }

    /// `true` if `pc` is word-aligned and inside the window.
    #[must_use]
    pub fn covers(&self, pc: u32) -> bool {
        pc & 3 == 0 && self.word_index(pc).is_some()
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> BlockStats {
        self.stats
    }

    /// Mutable access to the counters, for embedders that drive compiled
    /// blocks through their own dispatch loop (the Mr. Wolf cluster
    /// scheduler records its fallback steps here).
    pub fn stats_mut(&mut self) -> &mut BlockStats {
        &mut self.stats
    }

    #[inline]
    fn word_index(&self, addr: u32) -> Option<usize> {
        let off = (addr.wrapping_sub(self.base) / 4) as usize;
        (addr >= self.base && off < self.slots.len()).then_some(off)
    }

    fn in_window(&self, pc: u32) -> bool {
        pc & 3 == 0 && self.word_index(pc).is_some()
    }

    /// The block entered at `pc`, compiling it on a miss.
    ///
    /// `pc` must satisfy [`BlockCache::covers`].
    ///
    /// # Errors
    ///
    /// Fetch or decode faults on the *first* instruction of the block —
    /// exactly the error the reference interpreter would raise at `pc`.
    /// (Faults further into a block truncate it instead and surface if
    /// and when execution reaches them.)
    pub fn lookup(&mut self, bus: &mut B, pc: u32) -> Result<Rc<Block<B>>, CpuError> {
        let idx = self.word_index(pc).expect("lookup pc outside window");
        if let Some(b) = &self.slots[idx] {
            self.stats.hits += 1;
            return Ok(Rc::clone(b));
        }
        self.stats.misses += 1;
        let block = Rc::new(self.compile(bus, pc)?);
        for w in (block.entry..block.end).step_by(4) {
            if let Some(i) = self.word_index(w) {
                self.covered[i] = true;
            }
        }
        self.slots[idx] = Some(Rc::clone(&block));
        Ok(block)
    }

    fn compile(&mut self, bus: &mut B, entry: u32) -> Result<Block<B>, CpuError> {
        let mut instrs: Vec<(u32, Instr)> = Vec::new();
        let mut pc = entry;
        while instrs.len() < MAX_BLOCK_INSTRS && self.in_window(pc) {
            let word = match bus.fetch(pc) {
                Ok(w) => w,
                Err(e) if instrs.is_empty() => return Err(e.into()),
                Err(_) => break,
            };
            let instr = match decode(word) {
                Ok(i) => i,
                Err(e) if instrs.is_empty() => {
                    return Err(CpuError::Decode(DecodeError {
                        addr: Some(pc),
                        ..e
                    }))
                }
                Err(_) => break,
            };
            let terminates = matches!(
                instr,
                Instr::Branch { .. }
                    | Instr::Jal { .. }
                    | Instr::Jalr { .. }
                    | Instr::Ecall
                    | Instr::Ebreak
            ) || (!self.xpulp && instr.is_xpulp());
            instrs.push((pc, instr));
            pc = pc.wrapping_add(4);
            if terminates {
                break;
            }
        }
        debug_assert!(!instrs.is_empty(), "covers() guaranteed a fetchable pc");
        let ops = lower(&instrs, self.xpulp, self.fusion, &mut self.stats);
        self.stats.blocks_compiled += 1;
        self.stats.ops_lowered += ops.len() as u64;
        self.stats.instrs_compiled += instrs.len() as u64;
        Ok(Block {
            entry,
            end: pc,
            ops,
        })
    }

    /// Demotes every block whose words a store of `width` bytes at
    /// `addr` touched. Returns `true` if any block was dropped.
    ///
    /// Like [`DecodeCache::invalidate_store`](crate::DecodeCache::invalidate_store),
    /// the full byte span is walked, so a misaligned store straddling a
    /// word boundary demotes blocks on both sides.
    pub fn invalidate_store(&mut self, addr: u32, width: MemWidth) -> bool {
        let first = addr & !3;
        let last = addr.wrapping_add(width.bytes() - 1) & !3;
        let mut any = self.invalidate_word(first);
        if last != first {
            any |= self.invalidate_word(last);
        }
        any
    }

    fn invalidate_word(&mut self, w: u32) -> bool {
        let Some(wi) = self.word_index(w) else {
            return false;
        };
        if !self.covered[wi] {
            return false;
        }
        // Any block covering word `w` starts at most MAX_BLOCK_INSTRS - 1
        // words earlier and is registered at its entry slot.
        let lo = wi.saturating_sub(MAX_BLOCK_INSTRS - 1);
        let mut any = false;
        for slot in lo..=wi {
            let drop_it = match &self.slots[slot] {
                Some(b) => b.end > w,
                None => false,
            };
            if drop_it {
                self.slots[slot] = None;
                self.stats.demotions += 1;
                any = true;
            }
        }
        // Every block covering `w` is gone now; later stores to this word
        // can skip the scan until a new block covers it.
        self.covered[wi] = false;
        any
    }

    /// Drops every compiled block.
    pub fn invalidate_all(&mut self) {
        self.slots.fill(None);
        self.covered.fill(false);
    }
}

impl Cpu {
    /// Runs until the core halts, executing compiled basic blocks from
    /// `cache`.
    ///
    /// Architectural results — registers, memory, `pc`, cycle and
    /// instruction counts, the execution profile and any error — are
    /// bit-identical to [`Cpu::run`]: every sub-instruction retires
    /// individually, the cycle limit is re-checked between
    /// sub-instructions, stores demote overlapping blocks (including the
    /// one currently executing), and a PC that leaves the block (taken
    /// branch, hardware-loop back edge) re-enters through a fresh block
    /// lookup. PCs outside the cache window fall back to single
    /// fetch + decode + execute steps.
    ///
    /// # Errors
    ///
    /// Same as [`Cpu::run`].
    pub fn run_blocks<B: Bus>(
        &mut self,
        bus: &mut B,
        timing: &Timing,
        max_cycles: u64,
        cache: &mut BlockCache<B>,
    ) -> Result<RunResult, CpuError> {
        let mut cycles = 0u64;
        let mut instructions = 0u64;
        // Most-recently-entered block: hardware-loop back edges re-enter
        // the same block every iteration, so the entry compare serves the
        // common case without touching the slot table. Any demotion
        // clears it (`invalidate_store` reports drops), so it can never
        // outlive its cache entry.
        let mut mru: Option<Rc<Block<B>>> = None;
        while !self.halted {
            let pc = self.pc;
            if !cache.covers(pc) {
                // Out-of-window (or misaligned) pc: plain reference step.
                let word = bus.fetch(pc)?;
                let instr = decode(word).map_err(|e| {
                    CpuError::Decode(DecodeError {
                        addr: Some(pc),
                        ..e
                    })
                })?;
                let (cost, mem) = self.execute(instr, pc, bus, timing)?;
                if let Some(m) = mem {
                    if m.write && cache.invalidate_store(m.addr, m.width) {
                        mru = None;
                    }
                }
                cycles += u64::from(cost);
                instructions += 1;
                cache.stats.fallback_steps += 1;
                if cycles > max_cycles {
                    return Err(CpuError::CycleLimit { limit: max_cycles });
                }
                continue;
            }
            let block = match &mru {
                Some(b) if b.entry == pc => {
                    cache.stats.hits += 1;
                    Rc::clone(b)
                }
                _ => {
                    let b = cache.lookup(bus, pc)?;
                    mru = Some(Rc::clone(&b));
                    b
                }
            };
            let (entry, end) = (block.entry, block.end);
            let mut i = 0;
            loop {
                if i >= block.ops.len() {
                    cache.stats.exit_fallthrough += 1;
                    break;
                }
                let op = &block.ops[i];
                if self.pc != op.pc {
                    cache.stats.exit_redirect += 1;
                    break;
                }
                let budget = max_cycles - cycles;
                let exec = (op.handler)(self, bus, op, timing, budget)?;
                cycles += u64::from(exec.cycles);
                instructions += u64::from(exec.retired);
                let mut smc = false;
                for m in [exec.mem, exec.mem2].into_iter().flatten() {
                    if m.write {
                        if cache.invalidate_store(m.addr, m.width) {
                            mru = None;
                        }
                        let span = m.width.bytes();
                        if m.addr < end && m.addr.saturating_add(span) > entry {
                            smc = true;
                        }
                    }
                }
                if cycles > max_cycles {
                    return Err(CpuError::CycleLimit { limit: max_cycles });
                }
                if self.halted {
                    cache.stats.exit_halt += 1;
                    break;
                }
                if smc {
                    // The store rewrote bytes of this very block: stop
                    // executing the stale translation and re-enter, which
                    // recompiles from the fresh bytes.
                    cache.stats.exit_smc += 1;
                    break;
                }
                i += 1;
            }
        }
        Ok(RunResult {
            cycles,
            instructions,
        })
    }
}

// ---------------------------------------------------------------------
// Lowering.
// ---------------------------------------------------------------------

fn lower<B: Bus>(
    instrs: &[(u32, Instr)],
    xpulp: bool,
    fusion: FusionLevel,
    stats: &mut BlockStats,
) -> Vec<Op<B>> {
    let mut ops = Vec::with_capacity(instrs.len());
    let mut i = 0;
    while i < instrs.len() {
        let (pc, instr) = instrs[i];
        if let Some((op, width)) = try_fuse(instrs, i, xpulp, fusion, stats) {
            ops.push(op);
            i += width;
            continue;
        }
        ops.push(lower_single(pc, instr, xpulp));
        i += 1;
    }
    ops
}

/// Attempts a fusion starting at `instrs[i]`; returns the fused op and
/// the number of sub-instructions it consumed.
fn try_fuse<B: Bus>(
    instrs: &[(u32, Instr)],
    i: usize,
    xpulp: bool,
    fusion: FusionLevel,
    stats: &mut BlockStats,
) -> Option<(Op<B>, usize)> {
    let (pc, first) = instrs[i];
    if !xpulp && first.is_xpulp() {
        return None;
    }
    let full = fusion == FusionLevel::Full;
    // Three-wide patterns first.
    if i + 2 < instrs.len() {
        let (second, third) = (instrs[i + 1].1, instrs[i + 2].1);
        if full && xpulp {
            if let (
                Instr::LoadPost {
                    width: MemWidth::W,
                    rd: d1,
                    rs1: p1,
                    offset: o1,
                },
                Instr::LoadPost {
                    width: MemWidth::W,
                    rd: d2,
                    rs1: p2,
                    offset: o2,
                },
                Instr::Simd {
                    op: SimdOp::SdotspH,
                    rd: acc,
                    rs1: m1,
                    rs2: m2,
                },
            ) = (first, second, third)
            {
                let mut op = op_base(h_lp_lp_sdotsp::<B>, pc, first);
                op.flags = F_MEM;
                op.rd = d1;
                op.rs1 = p1;
                op.imm = o1;
                op.rd2 = d2;
                op.rs1b = p2;
                op.imm2 = o2;
                op.rd3 = acc;
                op.rs1c = m1;
                op.rs2c = m2;
                stats.fused_lp_lp_sdotsp += 1;
                return Some((op, 3));
            }
        }
        if let (
            Instr::Alu {
                op: AluOp::Mul,
                rd: d1,
                rs1: a,
                rs2: b,
            },
            Instr::Shift {
                op: ShiftOp::Srai,
                rd: d2,
                rs1: s,
                shamt,
            },
            Instr::Alu {
                op: AluOp::Add,
                rd: d3,
                rs1: x,
                rs2: y,
            },
        ) = (first, second, third)
        {
            let mut op = op_base(h_mul_srai_add::<B>, pc, first);
            op.rd = d1;
            op.rs1 = a;
            op.rs2 = b;
            op.rd2 = d2;
            op.rs1b = s;
            op.imm2 = i32::from(shamt);
            op.rd3 = d3;
            op.rs1c = x;
            op.rs2c = y;
            stats.fused_mul_srai_add += 1;
            return Some((op, 3));
        }
    }
    // Two-wide patterns.
    if i + 1 < instrs.len() {
        let second = instrs[i + 1].1;
        if xpulp {
            if let Instr::LoadPost {
                width: MemWidth::W,
                rd: d1,
                rs1: p1,
                offset: o1,
            } = first
            {
                if full {
                    if let Instr::LoadPost {
                        width: MemWidth::W,
                        rd: d2,
                        rs1: p2,
                        offset: o2,
                    } = second
                    {
                        let mut op = op_base(h_lp_lp::<B>, pc, first);
                        op.flags = F_MEM;
                        op.rd = d1;
                        op.rs1 = p1;
                        op.imm = o1;
                        op.rd2 = d2;
                        op.rs1b = p2;
                        op.imm2 = o2;
                        stats.fused_lp_lp += 1;
                        return Some((op, 2));
                    }
                }
                if let Instr::Simd {
                    op: SimdOp::SdotspH,
                    rd: acc,
                    rs1: m1,
                    rs2: m2,
                } = second
                {
                    let mut op = op_base(h_lp_sdotsp::<B>, pc, first);
                    op.flags = F_MEM;
                    op.rd = d1;
                    op.rs1 = p1;
                    op.imm = o1;
                    op.rd2 = acc;
                    op.rs1b = m1;
                    op.rs2b = m2;
                    stats.fused_lp_sdotsp += 1;
                    return Some((op, 2));
                }
                if let Instr::Mac { rd, rs1, rs2 } = second {
                    let mut op = op_base(h_lp_mac::<B>, pc, first);
                    op.flags = F_MEM;
                    op.rd = d1;
                    op.rs1 = p1;
                    op.imm = o1;
                    op.rd2 = rd;
                    op.rs1b = rs1;
                    op.rs2b = rs2;
                    stats.fused_lp_mac += 1;
                    return Some((op, 2));
                }
            }
        }
        if let (
            Instr::AluImm {
                op: AluImmOp::Addi,
                rd,
                rs1,
                imm,
            },
            Instr::Branch {
                cond,
                rs1: b1,
                rs2: b2,
                offset,
            },
        ) = (first, second)
        {
            let mut op = op_base(h_addi_branch::<B>, pc, first);
            op.cond = cond;
            op.rd = rd;
            op.rs1 = rs1;
            op.imm = imm;
            op.rs1b = b1;
            op.rs2b = b2;
            op.imm2 = offset;
            stats.fused_addi_branch += 1;
            return Some((op, 2));
        }
    }
    None
}

fn lower_single<B: Bus>(pc: u32, instr: Instr, xpulp: bool) -> Op<B> {
    if !xpulp && instr.is_xpulp() {
        return op_base(h_illegal_xpulp::<B>, pc, instr);
    }
    let mut op = match instr {
        Instr::Lui { rd, imm } => {
            let mut op = op_base(h_lui::<B>, pc, instr);
            op.rd = rd;
            op.imm = imm;
            op
        }
        Instr::AluImm {
            op: AluImmOp::Addi,
            rd,
            rs1,
            imm,
        } => {
            let mut op = op_base(h_addi::<B>, pc, instr);
            op.rd = rd;
            op.rs1 = rs1;
            op.imm = imm;
            op
        }
        Instr::Alu {
            op: alu_op,
            rd,
            rs1,
            rs2,
        } if matches!(alu_op, AluOp::Add | AluOp::Sub | AluOp::Mul) => {
            let handler = match alu_op {
                AluOp::Add => h_add::<B>,
                AluOp::Sub => h_sub::<B>,
                _ => h_mul::<B>,
            };
            let mut op = op_base(handler, pc, instr);
            op.rd = rd;
            op.rs1 = rs1;
            op.rs2 = rs2;
            op
        }
        Instr::Shift {
            op: shift_op,
            rd,
            rs1,
            shamt,
        } => {
            let handler = match shift_op {
                ShiftOp::Slli => h_slli::<B>,
                ShiftOp::Srli => h_srli::<B>,
                ShiftOp::Srai => h_srai::<B>,
            };
            let mut op = op_base(handler, pc, instr);
            op.rd = rd;
            op.rs1 = rs1;
            op.imm = i32::from(shamt);
            op
        }
        Instr::Load {
            width: MemWidth::W,
            rd,
            rs1,
            offset,
        } => {
            let mut op = op_base(h_lw::<B>, pc, instr);
            op.rd = rd;
            op.rs1 = rs1;
            op.imm = offset;
            op
        }
        Instr::Store {
            width: MemWidth::W,
            rs2,
            rs1,
            offset,
        } => {
            let mut op = op_base(h_sw::<B>, pc, instr);
            op.rs1 = rs1;
            op.rs2 = rs2;
            op.imm = offset;
            op
        }
        Instr::LoadPost {
            width: MemWidth::W,
            rd,
            rs1,
            offset,
        } => {
            let mut op = op_base(h_load_post_w::<B>, pc, instr);
            op.rd = rd;
            op.rs1 = rs1;
            op.imm = offset;
            op
        }
        Instr::Mac { rd, rs1, rs2 } => {
            let mut op = op_base(h_mac::<B>, pc, instr);
            op.rd = rd;
            op.rs1 = rs1;
            op.rs2 = rs2;
            op
        }
        Instr::Simd {
            op: SimdOp::SdotspH,
            rd,
            rs1,
            rs2,
        } => {
            let mut op = op_base(h_sdotsp::<B>, pc, instr);
            op.rd = rd;
            op.rs1 = rs1;
            op.rs2 = rs2;
            op
        }
        Instr::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => {
            let mut op = op_base(h_branch::<B>, pc, instr);
            op.cond = cond;
            op.rs1 = rs1;
            op.rs2 = rs2;
            op.imm = offset;
            op
        }
        Instr::Jal { rd, offset } => {
            let mut op = op_base(h_jal::<B>, pc, instr);
            op.rd = rd;
            op.imm = offset;
            op
        }
        Instr::Jalr { rd, rs1, offset } => {
            let mut op = op_base(h_jalr::<B>, pc, instr);
            op.rd = rd;
            op.rs1 = rs1;
            op.imm = offset;
            op
        }
        Instr::Ecall | Instr::Ebreak => op_base(h_halt::<B>, pc, instr),
        _ => op_base(h_generic::<B>, pc, instr),
    };
    if instr.is_mem() {
        op.flags |= F_MEM;
    }
    if matches!(instr, Instr::Ecall | Instr::Ebreak) {
        op.flags |= F_HALT;
    }
    op
}

// ---------------------------------------------------------------------
// Handlers. Each performs the exact architectural effects of the
// reference interpreter and retires through `Cpu::retire`.
// ---------------------------------------------------------------------

#[inline]
fn sdotsp(acc: u32, a: u32, b: u32) -> u32 {
    let (a0, a1) = (a as u16 as i16, (a >> 16) as u16 as i16);
    let (b0, b1) = (b as u16 as i16, (b >> 16) as u16 as i16);
    acc.wrapping_add(
        (i32::from(a0) * i32::from(b0)).wrapping_add(i32::from(a1) * i32::from(b1)) as u32,
    )
}

/// Executes one `p.lw rd, imm(rs1!)` sub-instruction and retires it.
#[inline]
fn sub_load_post_w<B: Bus>(
    cpu: &mut Cpu,
    bus: &mut B,
    rd: Reg,
    rs1: Reg,
    offset: i32,
    t: &Timing,
    next_pc: u32,
) -> Result<MemAccess, CpuError> {
    let addr = cpu.reg(rs1);
    let v = cpu.mem_load(bus, addr, MemWidth::W)?;
    cpu.set_reg(rd, v);
    if rd != rs1 {
        cpu.set_reg(rs1, addr.wrapping_add(offset as u32));
    }
    cpu.retire(InstrClass::Load, t.load, next_pc, true);
    Ok(MemAccess {
        addr,
        write: false,
        width: MemWidth::W,
    })
}

fn h_lui<B: Bus>(
    cpu: &mut Cpu,
    _bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    cpu.set_reg(op.rd, op.imm as u32);
    cpu.retire(InstrClass::Alu, t.alu, op.pc.wrapping_add(4), true);
    Ok(Exec::one(t.alu))
}

fn h_addi<B: Bus>(
    cpu: &mut Cpu,
    _bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    let v = cpu.reg(op.rs1).wrapping_add(op.imm as u32);
    cpu.set_reg(op.rd, v);
    cpu.retire(InstrClass::Alu, t.alu, op.pc.wrapping_add(4), true);
    Ok(Exec::one(t.alu))
}

fn h_add<B: Bus>(
    cpu: &mut Cpu,
    _bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    let v = cpu.reg(op.rs1).wrapping_add(cpu.reg(op.rs2));
    cpu.set_reg(op.rd, v);
    cpu.retire(InstrClass::Alu, t.alu, op.pc.wrapping_add(4), true);
    Ok(Exec::one(t.alu))
}

fn h_sub<B: Bus>(
    cpu: &mut Cpu,
    _bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    let v = cpu.reg(op.rs1).wrapping_sub(cpu.reg(op.rs2));
    cpu.set_reg(op.rd, v);
    cpu.retire(InstrClass::Alu, t.alu, op.pc.wrapping_add(4), true);
    Ok(Exec::one(t.alu))
}

fn h_mul<B: Bus>(
    cpu: &mut Cpu,
    _bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    let v = cpu.reg(op.rs1).wrapping_mul(cpu.reg(op.rs2));
    cpu.set_reg(op.rd, v);
    cpu.retire(InstrClass::Mul, t.mul, op.pc.wrapping_add(4), true);
    Ok(Exec::one(t.mul))
}

fn h_slli<B: Bus>(
    cpu: &mut Cpu,
    _bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    let v = cpu.reg(op.rs1) << op.imm;
    cpu.set_reg(op.rd, v);
    cpu.retire(InstrClass::Alu, t.alu, op.pc.wrapping_add(4), true);
    Ok(Exec::one(t.alu))
}

fn h_srli<B: Bus>(
    cpu: &mut Cpu,
    _bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    let v = cpu.reg(op.rs1) >> op.imm;
    cpu.set_reg(op.rd, v);
    cpu.retire(InstrClass::Alu, t.alu, op.pc.wrapping_add(4), true);
    Ok(Exec::one(t.alu))
}

fn h_srai<B: Bus>(
    cpu: &mut Cpu,
    _bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    let v = ((cpu.reg(op.rs1) as i32) >> op.imm) as u32;
    cpu.set_reg(op.rd, v);
    cpu.retire(InstrClass::Alu, t.alu, op.pc.wrapping_add(4), true);
    Ok(Exec::one(t.alu))
}

fn h_lw<B: Bus>(
    cpu: &mut Cpu,
    bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    let addr = cpu.reg(op.rs1).wrapping_add(op.imm as u32);
    let v = cpu.mem_load(bus, addr, MemWidth::W)?;
    cpu.set_reg(op.rd, v);
    cpu.retire(InstrClass::Load, t.load, op.pc.wrapping_add(4), true);
    Ok(Exec {
        cycles: t.load,
        retired: 1,
        mem: Some(MemAccess {
            addr,
            write: false,
            width: MemWidth::W,
        }),
        mem_cycles: t.load,
        ..Exec::default()
    })
}

fn h_sw<B: Bus>(
    cpu: &mut Cpu,
    bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    let addr = cpu.reg(op.rs1).wrapping_add(op.imm as u32);
    cpu.mem_store(bus, addr, MemWidth::W, cpu.reg(op.rs2))?;
    cpu.retire(InstrClass::Store, t.store, op.pc.wrapping_add(4), true);
    Ok(Exec {
        cycles: t.store,
        retired: 1,
        mem: Some(MemAccess {
            addr,
            write: true,
            width: MemWidth::W,
        }),
        mem_cycles: t.store,
        ..Exec::default()
    })
}

fn h_load_post_w<B: Bus>(
    cpu: &mut Cpu,
    bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    let mem = sub_load_post_w(cpu, bus, op.rd, op.rs1, op.imm, t, op.pc.wrapping_add(4))?;
    Ok(Exec {
        cycles: t.load,
        retired: 1,
        mem: Some(mem),
        mem_cycles: t.load,
        ..Exec::default()
    })
}

fn h_mac<B: Bus>(
    cpu: &mut Cpu,
    _bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    let v = cpu
        .reg(op.rd)
        .wrapping_add(cpu.reg(op.rs1).wrapping_mul(cpu.reg(op.rs2)));
    cpu.set_reg(op.rd, v);
    cpu.retire(InstrClass::Dsp, t.xpulp, op.pc.wrapping_add(4), true);
    Ok(Exec::one(t.xpulp))
}

fn h_sdotsp<B: Bus>(
    cpu: &mut Cpu,
    _bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    let v = sdotsp(cpu.reg(op.rd), cpu.reg(op.rs1), cpu.reg(op.rs2));
    cpu.set_reg(op.rd, v);
    cpu.retire(InstrClass::Simd, t.xpulp, op.pc.wrapping_add(4), true);
    Ok(Exec::one(t.xpulp))
}

#[inline]
fn branch_taken(cond: BranchCond, a: u32, b: u32) -> bool {
    match cond {
        BranchCond::Eq => a == b,
        BranchCond::Ne => a != b,
        BranchCond::Lt => (a as i32) < (b as i32),
        BranchCond::Ge => (a as i32) >= (b as i32),
        BranchCond::Ltu => a < b,
        BranchCond::Geu => a >= b,
    }
}

fn h_branch<B: Bus>(
    cpu: &mut Cpu,
    _bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    if branch_taken(op.cond, cpu.reg(op.rs1), cpu.reg(op.rs2)) {
        cpu.retire(
            InstrClass::BranchTaken,
            t.branch_taken,
            op.pc.wrapping_add(op.imm as u32),
            true,
        );
        Ok(Exec::one(t.branch_taken))
    } else {
        cpu.retire(
            InstrClass::BranchNotTaken,
            t.branch_not_taken,
            op.pc.wrapping_add(4),
            true,
        );
        Ok(Exec::one(t.branch_not_taken))
    }
}

fn h_jal<B: Bus>(
    cpu: &mut Cpu,
    _bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    cpu.set_reg(op.rd, op.pc.wrapping_add(4));
    cpu.retire(
        InstrClass::Jump,
        t.jump,
        op.pc.wrapping_add(op.imm as u32),
        false,
    );
    Ok(Exec::one(t.jump))
}

fn h_jalr<B: Bus>(
    cpu: &mut Cpu,
    _bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    let target = cpu.reg(op.rs1).wrapping_add(op.imm as u32) & !1;
    cpu.set_reg(op.rd, op.pc.wrapping_add(4));
    cpu.retire(InstrClass::Jump, t.jump, target, false);
    Ok(Exec::one(t.jump))
}

fn h_halt<B: Bus>(
    cpu: &mut Cpu,
    _bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    cpu.halted = true;
    cpu.retire(InstrClass::System, t.alu, op.pc, true);
    Ok(Exec::one(t.alu))
}

fn h_illegal_xpulp<B: Bus>(
    _cpu: &mut Cpu,
    _bus: &mut B,
    op: &Op<B>,
    _t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    Err(CpuError::IllegalXpulp { pc: op.pc })
}

fn h_generic<B: Bus>(
    cpu: &mut Cpu,
    bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    _budget: u64,
) -> Result<Exec, CpuError> {
    let (cycles, mem) = cpu.execute(op.instr, op.pc, bus, t)?;
    Ok(Exec {
        cycles,
        retired: 1,
        mem,
        mem_cycles: cycles,
        ..Exec::default()
    })
}

// ---- Fused handlers -------------------------------------------------
//
// Between sub-instructions each handler re-checks (a) the cycle budget,
// because the reference interpreter tests the limit after every
// instruction, and (b) that `pc` still points at the next
// sub-instruction, because a hardware-loop back edge can redirect
// mid-pattern. Either condition returns a partial `Exec`; the dispatch
// loop re-enters at the architecturally-correct pc.

fn h_lp_lp_sdotsp<B: Bus>(
    cpu: &mut Cpu,
    bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    budget: u64,
) -> Result<Exec, CpuError> {
    let mut e = Exec::default();
    let m1 = sub_load_post_w(cpu, bus, op.rd, op.rs1, op.imm, t, op.pc.wrapping_add(4))?;
    e.cycles = t.load;
    e.retired = 1;
    e.mem = Some(m1);
    e.mem_cycles = t.load;
    if u64::from(e.cycles) > budget || cpu.pc != op.pc.wrapping_add(4) {
        return Ok(e);
    }
    let m2 = sub_load_post_w(cpu, bus, op.rd2, op.rs1b, op.imm2, t, op.pc.wrapping_add(8))?;
    e.cycles += t.load;
    e.retired = 2;
    e.mem2 = Some(m2);
    e.mem2_cycles = t.load;
    if u64::from(e.cycles) > budget || cpu.pc != op.pc.wrapping_add(8) {
        return Ok(e);
    }
    let v = sdotsp(cpu.reg(op.rd3), cpu.reg(op.rs1c), cpu.reg(op.rs2c));
    cpu.set_reg(op.rd3, v);
    cpu.retire(InstrClass::Simd, t.xpulp, op.pc.wrapping_add(12), true);
    e.cycles += t.xpulp;
    e.retired = 3;
    Ok(e)
}

fn h_lp_lp<B: Bus>(
    cpu: &mut Cpu,
    bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    budget: u64,
) -> Result<Exec, CpuError> {
    let mut e = Exec::default();
    let m1 = sub_load_post_w(cpu, bus, op.rd, op.rs1, op.imm, t, op.pc.wrapping_add(4))?;
    e.cycles = t.load;
    e.retired = 1;
    e.mem = Some(m1);
    e.mem_cycles = t.load;
    if u64::from(e.cycles) > budget || cpu.pc != op.pc.wrapping_add(4) {
        return Ok(e);
    }
    let m2 = sub_load_post_w(cpu, bus, op.rd2, op.rs1b, op.imm2, t, op.pc.wrapping_add(8))?;
    e.cycles += t.load;
    e.retired = 2;
    e.mem2 = Some(m2);
    e.mem2_cycles = t.load;
    Ok(e)
}

fn h_lp_sdotsp<B: Bus>(
    cpu: &mut Cpu,
    bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    budget: u64,
) -> Result<Exec, CpuError> {
    let mut e = Exec::default();
    let m1 = sub_load_post_w(cpu, bus, op.rd, op.rs1, op.imm, t, op.pc.wrapping_add(4))?;
    e.cycles = t.load;
    e.retired = 1;
    e.mem = Some(m1);
    e.mem_cycles = t.load;
    if u64::from(e.cycles) > budget || cpu.pc != op.pc.wrapping_add(4) {
        return Ok(e);
    }
    let v = sdotsp(cpu.reg(op.rd2), cpu.reg(op.rs1b), cpu.reg(op.rs2b));
    cpu.set_reg(op.rd2, v);
    cpu.retire(InstrClass::Simd, t.xpulp, op.pc.wrapping_add(8), true);
    e.cycles += t.xpulp;
    e.retired = 2;
    Ok(e)
}

fn h_lp_mac<B: Bus>(
    cpu: &mut Cpu,
    bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    budget: u64,
) -> Result<Exec, CpuError> {
    let mut e = Exec::default();
    let m1 = sub_load_post_w(cpu, bus, op.rd, op.rs1, op.imm, t, op.pc.wrapping_add(4))?;
    e.cycles = t.load;
    e.retired = 1;
    e.mem = Some(m1);
    e.mem_cycles = t.load;
    if u64::from(e.cycles) > budget || cpu.pc != op.pc.wrapping_add(4) {
        return Ok(e);
    }
    let v = cpu
        .reg(op.rd2)
        .wrapping_add(cpu.reg(op.rs1b).wrapping_mul(cpu.reg(op.rs2b)));
    cpu.set_reg(op.rd2, v);
    cpu.retire(InstrClass::Dsp, t.xpulp, op.pc.wrapping_add(8), true);
    e.cycles += t.xpulp;
    e.retired = 2;
    Ok(e)
}

fn h_mul_srai_add<B: Bus>(
    cpu: &mut Cpu,
    _bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    budget: u64,
) -> Result<Exec, CpuError> {
    let mut e = Exec::default();
    let v = cpu.reg(op.rs1).wrapping_mul(cpu.reg(op.rs2));
    cpu.set_reg(op.rd, v);
    cpu.retire(InstrClass::Mul, t.mul, op.pc.wrapping_add(4), true);
    e.cycles = t.mul;
    e.retired = 1;
    if u64::from(e.cycles) > budget || cpu.pc != op.pc.wrapping_add(4) {
        return Ok(e);
    }
    let v = ((cpu.reg(op.rs1b) as i32) >> op.imm2) as u32;
    cpu.set_reg(op.rd2, v);
    cpu.retire(InstrClass::Alu, t.alu, op.pc.wrapping_add(8), true);
    e.cycles += t.alu;
    e.retired = 2;
    if u64::from(e.cycles) > budget || cpu.pc != op.pc.wrapping_add(8) {
        return Ok(e);
    }
    let v = cpu.reg(op.rs1c).wrapping_add(cpu.reg(op.rs2c));
    cpu.set_reg(op.rd3, v);
    cpu.retire(InstrClass::Alu, t.alu, op.pc.wrapping_add(12), true);
    e.cycles += t.alu;
    e.retired = 3;
    Ok(e)
}

fn h_addi_branch<B: Bus>(
    cpu: &mut Cpu,
    _bus: &mut B,
    op: &Op<B>,
    t: &Timing,
    budget: u64,
) -> Result<Exec, CpuError> {
    let mut e = Exec::default();
    let v = cpu.reg(op.rs1).wrapping_add(op.imm as u32);
    cpu.set_reg(op.rd, v);
    cpu.retire(InstrClass::Alu, t.alu, op.pc.wrapping_add(4), true);
    e.cycles = t.alu;
    e.retired = 1;
    if u64::from(e.cycles) > budget || cpu.pc != op.pc.wrapping_add(4) {
        return Ok(e);
    }
    let branch_pc = op.pc.wrapping_add(4);
    if branch_taken(op.cond, cpu.reg(op.rs1b), cpu.reg(op.rs2b)) {
        cpu.retire(
            InstrClass::BranchTaken,
            t.branch_taken,
            branch_pc.wrapping_add(op.imm2 as u32),
            true,
        );
        e.cycles += t.branch_taken;
    } else {
        cpu.retire(
            InstrClass::BranchNotTaken,
            t.branch_not_taken,
            branch_pc.wrapping_add(4),
            true,
        );
        e.cycles += t.branch_not_taken;
    }
    e.retired = 2;
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::bus::Ram;
    use crate::instr::LoopIdx;

    fn outcome(cpu: &Cpu, res: &Result<RunResult, CpuError>) -> impl PartialEq + core::fmt::Debug {
        (
            *res,
            cpu.pc(),
            cpu.is_halted(),
            cpu.retired(),
            *cpu.profile(),
            (0..32).map(|i| cpu.reg(Reg::new(i))).collect::<Vec<_>>(),
        )
    }

    fn compare_against_reference(asm: &Asm, max_cycles: u64, xpulp: bool) {
        let image = asm.assemble().unwrap();
        let timing = if xpulp {
            Timing::riscy()
        } else {
            Timing::ibex()
        };
        let new_cpu = |pc| {
            if xpulp {
                Cpu::new(pc)
            } else {
                Cpu::new_rv32im(pc)
            }
        };

        let mut ram_a = Ram::new(0, 4096);
        ram_a.write_bytes(0, &image);
        let mut ref_cpu = new_cpu(0);
        let ref_res = ref_cpu.run(&mut ram_a, &timing, max_cycles);

        for fusion in [FusionLevel::SharedMem, FusionLevel::Full] {
            let mut ram_b = Ram::new(0, 4096);
            ram_b.write_bytes(0, &image);
            let mut cpu = new_cpu(0);
            let mut cache = BlockCache::new(0, 4096, xpulp, fusion);
            let res = cpu.run_blocks(&mut ram_b, &timing, max_cycles, &mut cache);
            assert_eq!(
                outcome(&cpu, &res),
                outcome(&ref_cpu, &ref_res),
                "fusion = {fusion:?}"
            );
            assert_eq!(
                ram_b.read_bytes(0, 4096),
                ram_a.read_bytes(0, 4096),
                "fusion = {fusion:?}"
            );
        }
    }

    fn dot_kernel() -> Asm {
        // The Network-B inner loop shape: hardware loop around
        // p.lw / p.lw / pv.sdotsp.h, then a fixed-point requantize tail.
        let mut asm = Asm::new(0);
        asm.li(Reg::A0, 0x200); // w cursor
        asm.li(Reg::A1, 0x300); // x cursor
        asm.li(Reg::A2, 0); // acc
        asm.li(Reg::T0, 8); // count
        let end = asm.new_label();
        asm.lp_setup_to(LoopIdx::L0, Reg::T0, end);
        asm.load_post(MemWidth::W, Reg::A3, Reg::A0, 4);
        asm.load_post(MemWidth::W, Reg::A4, Reg::A1, 4);
        asm.simd(SimdOp::SdotspH, Reg::A2, Reg::A3, Reg::A4);
        asm.bind(end);
        asm.li(Reg::A5, 3);
        asm.alu(AluOp::Mul, Reg::A6, Reg::A2, Reg::A5);
        asm.shift(ShiftOp::Srai, Reg::A6, Reg::A6, 7);
        asm.alu(AluOp::Add, Reg::A7, Reg::A6, Reg::A5);
        asm.ecall();
        asm
    }

    fn fill_data(ram: &mut Ram) {
        for i in 0..32u32 {
            ram.write_bytes(0x200 + 4 * i, &(0x0001_0002u32 + i).to_le_bytes());
            ram.write_bytes(0x300 + 4 * i, &(0x0003_0001u32 + i).to_le_bytes());
        }
    }

    #[test]
    fn dot_kernel_matches_reference_and_fuses() {
        let asm = dot_kernel();
        let image = asm.assemble().unwrap();
        let timing = Timing::riscy();

        let mut ram_a = Ram::new(0, 4096);
        ram_a.write_bytes(0, &image);
        fill_data(&mut ram_a);
        let mut ref_cpu = Cpu::new(0);
        let ref_res = ref_cpu.run(&mut ram_a, &timing, 100_000);

        for fusion in [FusionLevel::SharedMem, FusionLevel::Full] {
            let mut ram_b = Ram::new(0, 4096);
            ram_b.write_bytes(0, &image);
            fill_data(&mut ram_b);
            let mut cpu = Cpu::new(0);
            let mut cache = BlockCache::new(0, 4096, true, fusion);
            let res = cpu.run_blocks(&mut ram_b, &timing, 100_000, &mut cache);
            assert_eq!(outcome(&cpu, &res), outcome(&ref_cpu, &ref_res));
            let stats = cache.stats();
            assert!(stats.fused_total() > 0, "kernel should fuse ({fusion:?})");
            assert!(stats.fused_mul_srai_add >= 1);
            if fusion == FusionLevel::Full {
                assert!(stats.fused_lp_lp_sdotsp >= 1);
            } else {
                assert_eq!(stats.fused_lp_lp_sdotsp, 0);
                assert_eq!(stats.fused_lp_lp, 0);
                assert!(stats.fused_lp_sdotsp >= 1);
            }
            assert!(stats.hits > 0, "hardware loop should re-enter its block");
        }
    }

    #[test]
    fn branch_loop_matches_reference() {
        let mut asm = Asm::new(0);
        asm.li(Reg::A0, 5);
        asm.li(Reg::A1, 0);
        let top = asm.here();
        asm.addi(Reg::A1, Reg::A1, 2);
        asm.addi(Reg::A0, Reg::A0, -1);
        asm.bne_to(Reg::A0, Reg::ZERO, top);
        asm.ecall();
        compare_against_reference(&asm, 1_000_000, true);
        compare_against_reference(&asm, 1_000_000, false);
    }

    #[test]
    fn cycle_limit_stops_mid_fused_op_exactly() {
        let asm = dot_kernel();
        // Sweep limits across the whole run so some land inside fused
        // ops; state and error must match the reference at every cut.
        for limit in 1..80 {
            let image = asm.assemble().unwrap();
            let timing = Timing::riscy();
            let mut ram_a = Ram::new(0, 4096);
            ram_a.write_bytes(0, &image);
            fill_data(&mut ram_a);
            let mut ref_cpu = Cpu::new(0);
            let ref_res = ref_cpu.run(&mut ram_a, &timing, limit);

            let mut ram_b = Ram::new(0, 4096);
            ram_b.write_bytes(0, &image);
            fill_data(&mut ram_b);
            let mut cpu = Cpu::new(0);
            let mut cache = BlockCache::new(0, 4096, true, FusionLevel::Full);
            let res = cpu.run_blocks(&mut ram_b, &timing, limit, &mut cache);
            assert_eq!(
                outcome(&cpu, &res),
                outcome(&ref_cpu, &ref_res),
                "limit = {limit}"
            );
        }
    }

    #[test]
    fn fault_mid_fused_op_matches_reference() {
        // Second p.lw reads a misaligned address: the first sub must
        // stay retired and the fault's pc must match the reference.
        let mut asm = Asm::new(0);
        asm.li(Reg::A0, 0x200);
        asm.li(Reg::A1, 0x301); // misaligned
        asm.li(Reg::A2, 0);
        asm.load_post(MemWidth::W, Reg::A3, Reg::A0, 4);
        asm.load_post(MemWidth::W, Reg::A4, Reg::A1, 4);
        asm.simd(SimdOp::SdotspH, Reg::A2, Reg::A3, Reg::A4);
        asm.ecall();
        compare_against_reference(&asm, 100_000, true);
    }

    #[test]
    fn self_modifying_store_demotes_block() {
        // Same shape as the DecodeCache SMC test: patch the *previous*
        // loop body instruction mid-run and require the next iteration
        // to see the new bytes.
        let mut asm = Asm::new(0);
        asm.li(Reg::A0, 0); // 0x00
        asm.li(Reg::T0, 2); // 0x04
        let top = asm.here(); // 0x08
        asm.addi(Reg::A0, Reg::A0, 1); // 0x08 (patched to +7)
        asm.store(MemWidth::W, Reg::T2, Reg::T1, 0); // 0x0c
        asm.addi(Reg::T0, Reg::T0, -1); // 0x10
        asm.bne_to(Reg::T0, Reg::ZERO, top); // 0x14
        asm.ecall(); // 0x18
        let image = asm.assemble().unwrap();

        let mut patch = Asm::new(0);
        patch.addi(Reg::A0, Reg::A0, 7);
        let patch_word = u32::from_le_bytes(patch.assemble().unwrap()[..4].try_into().unwrap());

        let run = |blocks: bool| {
            let mut ram = Ram::new(0, 4096);
            ram.write_bytes(0, &image);
            let mut cpu = Cpu::new(0);
            cpu.set_reg(Reg::T1, 0x08);
            cpu.set_reg(Reg::T2, patch_word);
            let res = if blocks {
                let mut cache = BlockCache::new(0, 4096, true, FusionLevel::Full);
                let r = cpu.run_blocks(&mut ram, &Timing::riscy(), 1_000_000, &mut cache);
                assert!(cache.stats().demotions > 0);
                assert!(cache.stats().exit_smc > 0);
                r
            } else {
                cpu.run(&mut ram, &Timing::riscy(), 1_000_000)
            }
            .unwrap();
            (cpu.reg(Reg::A0), res)
        };

        let (a0_ref, res_ref) = run(false);
        let (a0_blocks, res_blocks) = run(true);
        assert_eq!(a0_ref, 1 + 7);
        assert_eq!(a0_blocks, a0_ref);
        assert_eq!(res_blocks, res_ref);
    }

    #[test]
    fn ibex_rejects_xpulp_in_blocks() {
        let mut asm = Asm::new(0);
        asm.li(Reg::A0, 1);
        asm.mac(Reg::A0, Reg::A1, Reg::A2);
        asm.ecall();
        compare_against_reference(&asm, 1_000, false);
    }

    #[test]
    fn out_of_window_pc_falls_back() {
        let mut asm = Asm::new(0x100);
        asm.li(Reg::A0, 7);
        asm.ecall();
        let mut ram = Ram::new(0, 512);
        ram.write_bytes(0x100, &asm.assemble().unwrap());
        let mut cpu = Cpu::new(0x100);
        let mut cache = BlockCache::new(0, 64, true, FusionLevel::Full); // window ends at 0x40
        let res = cpu
            .run_blocks(&mut ram, &Timing::riscy(), 1_000, &mut cache)
            .unwrap();
        assert_eq!(cpu.reg(Reg::A0), 7);
        assert!(res.instructions > 0);
        assert_eq!(cache.stats().fallback_steps, res.instructions);
        assert_eq!(cache.stats().blocks_compiled, 0);
    }

    #[test]
    fn misaligned_spanning_store_demotes_both_blocks() {
        let mut cache: BlockCache<Ram> = BlockCache::new(0, 4096, true, FusionLevel::Full);
        let mut asm = Asm::new(0);
        asm.li(Reg::A0, 1);
        asm.ecall();
        let mut ram = Ram::new(0, 4096);
        ram.write_bytes(0, &asm.assemble().unwrap());
        let b = cache.lookup(&mut ram, 0).unwrap();
        assert!(b.end() >= 8);
        // A word store at offset 2 touches words 0 and 4 — both belong
        // to the compiled block, which must be demoted (once).
        assert!(cache.invalidate_store(2, MemWidth::W));
        assert_eq!(cache.stats().demotions, 1);
        assert!(!cache.invalidate_store(2, MemWidth::W));
    }
}
