//! Binary encoding of [`Instr`] into 32-bit RISC-V instruction words.
//!
//! Base RV32IM instructions use the standard R/I/S/B/U/J formats. The Xpulp
//! subset uses the opcode map documented below; it mirrors the structure of
//! the RI5CY opcode assignments (custom-0/custom-1 for post-increment memory
//! operations, `0b1111011` for hardware loops and a vector opcode for packed
//! SIMD) and is the authoritative encoding for this simulator:
//!
//! | group | opcode | discriminant |
//! |---|---|---|
//! | post-increment loads | `0001011` | funct3 = width |
//! | post-increment stores | `0101011` | funct3 = width |
//! | `p.mac` / `p.msu` | `0110011` | funct7 `0100001`, funct3 0/1 |
//! | `p.clip` | `0110011` | funct7 `0001010`, funct3 1, bits in rs2 |
//! | `p.abs`/`p.min`/… | `0110011` | funct7 `0000010`, funct3 selects |
//! | `pv.*.h` SIMD | `1010111` | funct7 selects, funct3 = 0 |
//! | `lp.*` hardware loops | `1111011` | funct3 selects |
//!
//! Hardware-loop and branch offsets are stored in halfword units, so a 12-bit
//! immediate covers ±4 KiB of code.

use crate::instr::{AluImmOp, AluOp, BranchCond, Instr, MemWidth, PulpAluOp, ShiftOp, SimdOp};

/// Error produced when an instruction cannot be represented in 32 bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate or offset does not fit its field.
    ImmOutOfRange {
        /// Mnemonic of the offending instruction.
        what: &'static str,
        /// The immediate value that did not fit.
        value: i64,
    },
    /// A branch/jump/loop offset is not even (instruction addresses are
    /// halfword-aligned at minimum).
    MisalignedOffset {
        /// Mnemonic of the offending instruction.
        what: &'static str,
        /// The offending offset.
        value: i32,
    },
    /// A store was requested with an unsigned (load-only) width.
    BadStoreWidth,
}

impl core::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { what, value } => {
                write!(f, "immediate {value} out of range for {what}")
            }
            EncodeError::MisalignedOffset { what, value } => {
                write!(f, "offset {value} for {what} is not halfword aligned")
            }
            EncodeError::BadStoreWidth => f.write_str("store width must be b, h or w"),
        }
    }
}

impl std::error::Error for EncodeError {}

pub(crate) const OP_LUI: u32 = 0b011_0111;
pub(crate) const OP_AUIPC: u32 = 0b001_0111;
pub(crate) const OP_JAL: u32 = 0b110_1111;
pub(crate) const OP_JALR: u32 = 0b110_0111;
pub(crate) const OP_BRANCH: u32 = 0b110_0011;
pub(crate) const OP_LOAD: u32 = 0b000_0011;
pub(crate) const OP_STORE: u32 = 0b010_0011;
pub(crate) const OP_OPIMM: u32 = 0b001_0011;
pub(crate) const OP_OP: u32 = 0b011_0011;
pub(crate) const OP_SYSTEM: u32 = 0b111_0011;
pub(crate) const OP_MISCMEM: u32 = 0b000_1111;
pub(crate) const OP_LOADPOST: u32 = 0b000_1011;
pub(crate) const OP_STOREPOST: u32 = 0b010_1011;
pub(crate) const OP_HWLOOP: u32 = 0b111_1011;
pub(crate) const OP_SIMD: u32 = 0b101_0111;

pub(crate) const F7_MULDIV: u32 = 0b000_0001;
pub(crate) const F7_MACMSU: u32 = 0b010_0001;
pub(crate) const F7_CLIP: u32 = 0b000_1010;
pub(crate) const F7_PULPALU: u32 = 0b000_0010;

fn check_range(what: &'static str, value: i64, bits: u32) -> Result<(), EncodeError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if value < min || value > max {
        return Err(EncodeError::ImmOutOfRange { what, value });
    }
    Ok(())
}

fn check_urange(what: &'static str, value: i64, bits: u32) -> Result<(), EncodeError> {
    if value < 0 || value >= (1i64 << bits) {
        return Err(EncodeError::ImmOutOfRange { what, value });
    }
    Ok(())
}

fn r_type(opcode: u32, rd: u32, funct3: u32, rs1: u32, rs2: u32, funct7: u32) -> u32 {
    opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (rs2 << 20) | (funct7 << 25)
}

fn i_type(opcode: u32, rd: u32, funct3: u32, rs1: u32, imm: i32) -> u32 {
    opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (((imm as u32) & 0xfff) << 20)
}

fn s_type(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm: i32) -> u32 {
    let imm = imm as u32;
    opcode
        | ((imm & 0x1f) << 7)
        | (funct3 << 12)
        | (rs1 << 15)
        | (rs2 << 20)
        | (((imm >> 5) & 0x7f) << 25)
}

fn b_type(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm: i32) -> u32 {
    let imm = imm as u32;
    opcode
        | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xf) << 8)
        | (funct3 << 12)
        | (rs1 << 15)
        | (rs2 << 20)
        | (((imm >> 5) & 0x3f) << 25)
        | (((imm >> 12) & 1) << 31)
}

fn u_type(opcode: u32, rd: u32, imm: i32) -> u32 {
    opcode | (rd << 7) | ((imm as u32) & 0xffff_f000)
}

fn j_type(opcode: u32, rd: u32, imm: i32) -> u32 {
    let imm = imm as u32;
    opcode
        | (rd << 7)
        | (((imm >> 12) & 0xff) << 12)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 20) & 1) << 31)
}

fn load_funct3(width: MemWidth) -> u32 {
    match width {
        MemWidth::B => 0b000,
        MemWidth::H => 0b001,
        MemWidth::W => 0b010,
        MemWidth::Bu => 0b100,
        MemWidth::Hu => 0b101,
    }
}

fn store_funct3(width: MemWidth) -> Result<u32, EncodeError> {
    match width {
        MemWidth::B => Ok(0b000),
        MemWidth::H => Ok(0b001),
        MemWidth::W => Ok(0b010),
        MemWidth::Bu | MemWidth::Hu => Err(EncodeError::BadStoreWidth),
    }
}

fn simd_funct7(op: SimdOp) -> u32 {
    match op {
        SimdOp::AddH => 0b000_0000,
        SimdOp::SubH => 0b000_0100,
        SimdOp::MinH => 0b001_0000,
        SimdOp::MaxH => 0b001_1000,
        SimdOp::DotspH => 0b100_1100,
        SimdOp::SdotspH => 0b101_0100,
        SimdOp::PackH => 0b111_0000,
    }
}

fn pulp_alu_funct3(op: PulpAluOp) -> u32 {
    match op {
        PulpAluOp::Abs => 0b000,
        PulpAluOp::Exths => 0b010,
        PulpAluOp::Extuh => 0b011,
        PulpAluOp::Min => 0b100,
        PulpAluOp::Max => 0b101,
        PulpAluOp::Minu => 0b110,
        PulpAluOp::Maxu => 0b111,
    }
}

fn halfword_offset(what: &'static str, offset: i32) -> Result<i32, EncodeError> {
    if offset % 2 != 0 {
        return Err(EncodeError::MisalignedOffset {
            what,
            value: offset,
        });
    }
    Ok(offset / 2)
}

/// Encodes an instruction into its 32-bit word.
///
/// # Errors
///
/// Returns [`EncodeError`] when an immediate does not fit its field, a
/// control-flow offset is misaligned, or a store uses a load-only width.
///
/// # Examples
///
/// ```
/// use iw_rv32::{encode, Instr, Reg, AluImmOp};
/// let word = encode(&Instr::AluImm {
///     op: AluImmOp::Addi,
///     rd: Reg::A0,
///     rs1: Reg::ZERO,
///     imm: 42,
/// })?;
/// assert_eq!(word, 0x02a0_0513);
/// # Ok::<(), iw_rv32::EncodeError>(())
/// ```
pub fn encode(instr: &Instr) -> Result<u32, EncodeError> {
    Ok(match *instr {
        Instr::Lui { rd, imm } => {
            if imm & 0xfff != 0 {
                return Err(EncodeError::ImmOutOfRange {
                    what: "lui",
                    value: imm as i64,
                });
            }
            u_type(OP_LUI, rd.index().into(), imm)
        }
        Instr::Auipc { rd, imm } => {
            if imm & 0xfff != 0 {
                return Err(EncodeError::ImmOutOfRange {
                    what: "auipc",
                    value: imm as i64,
                });
            }
            u_type(OP_AUIPC, rd.index().into(), imm)
        }
        Instr::Jal { rd, offset } => {
            check_range("jal", offset as i64, 21)?;
            halfword_offset("jal", offset)?;
            j_type(OP_JAL, rd.index().into(), offset)
        }
        Instr::Jalr { rd, rs1, offset } => {
            check_range("jalr", offset as i64, 12)?;
            i_type(OP_JALR, rd.index().into(), 0, rs1.index().into(), offset)
        }
        Instr::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => {
            check_range("branch", offset as i64, 13)?;
            halfword_offset("branch", offset)?;
            let funct3 = match cond {
                BranchCond::Eq => 0b000,
                BranchCond::Ne => 0b001,
                BranchCond::Lt => 0b100,
                BranchCond::Ge => 0b101,
                BranchCond::Ltu => 0b110,
                BranchCond::Geu => 0b111,
            };
            b_type(
                OP_BRANCH,
                funct3,
                rs1.index().into(),
                rs2.index().into(),
                offset,
            )
        }
        Instr::Load {
            width,
            rd,
            rs1,
            offset,
        } => {
            check_range("load", offset as i64, 12)?;
            i_type(
                OP_LOAD,
                rd.index().into(),
                load_funct3(width),
                rs1.index().into(),
                offset,
            )
        }
        Instr::Store {
            width,
            rs2,
            rs1,
            offset,
        } => {
            check_range("store", offset as i64, 12)?;
            s_type(
                OP_STORE,
                store_funct3(width)?,
                rs1.index().into(),
                rs2.index().into(),
                offset,
            )
        }
        Instr::AluImm { op, rd, rs1, imm } => {
            check_range("alu-imm", imm as i64, 12)?;
            let funct3 = match op {
                AluImmOp::Addi => 0b000,
                AluImmOp::Slti => 0b010,
                AluImmOp::Sltiu => 0b011,
                AluImmOp::Xori => 0b100,
                AluImmOp::Ori => 0b110,
                AluImmOp::Andi => 0b111,
            };
            i_type(OP_OPIMM, rd.index().into(), funct3, rs1.index().into(), imm)
        }
        Instr::Shift { op, rd, rs1, shamt } => {
            check_urange("shift", shamt as i64, 5)?;
            let (funct3, funct7) = match op {
                ShiftOp::Slli => (0b001, 0b000_0000),
                ShiftOp::Srli => (0b101, 0b000_0000),
                ShiftOp::Srai => (0b101, 0b010_0000),
            };
            r_type(
                OP_OPIMM,
                rd.index().into(),
                funct3,
                rs1.index().into(),
                shamt.into(),
                funct7,
            )
        }
        Instr::Alu { op, rd, rs1, rs2 } => {
            let (funct3, funct7) = match op {
                AluOp::Add => (0b000, 0b000_0000),
                AluOp::Sub => (0b000, 0b010_0000),
                AluOp::Sll => (0b001, 0b000_0000),
                AluOp::Slt => (0b010, 0b000_0000),
                AluOp::Sltu => (0b011, 0b000_0000),
                AluOp::Xor => (0b100, 0b000_0000),
                AluOp::Srl => (0b101, 0b000_0000),
                AluOp::Sra => (0b101, 0b010_0000),
                AluOp::Or => (0b110, 0b000_0000),
                AluOp::And => (0b111, 0b000_0000),
                AluOp::Mul => (0b000, F7_MULDIV),
                AluOp::Mulh => (0b001, F7_MULDIV),
                AluOp::Mulhsu => (0b010, F7_MULDIV),
                AluOp::Mulhu => (0b011, F7_MULDIV),
                AluOp::Div => (0b100, F7_MULDIV),
                AluOp::Divu => (0b101, F7_MULDIV),
                AluOp::Rem => (0b110, F7_MULDIV),
                AluOp::Remu => (0b111, F7_MULDIV),
            };
            r_type(
                OP_OP,
                rd.index().into(),
                funct3,
                rs1.index().into(),
                rs2.index().into(),
                funct7,
            )
        }
        Instr::Ecall => i_type(OP_SYSTEM, 0, 0, 0, 0),
        Instr::Ebreak => i_type(OP_SYSTEM, 0, 0, 0, 1),
        Instr::Fence => i_type(OP_MISCMEM, 0, 0, 0, 0),
        Instr::LoadPost {
            width,
            rd,
            rs1,
            offset,
        } => {
            check_range("p.load", offset as i64, 12)?;
            i_type(
                OP_LOADPOST,
                rd.index().into(),
                load_funct3(width),
                rs1.index().into(),
                offset,
            )
        }
        Instr::StorePost {
            width,
            rs2,
            rs1,
            offset,
        } => {
            check_range("p.store", offset as i64, 12)?;
            s_type(
                OP_STOREPOST,
                store_funct3(width)?,
                rs1.index().into(),
                rs2.index().into(),
                offset,
            )
        }
        Instr::Mac { rd, rs1, rs2 } => r_type(
            OP_OP,
            rd.index().into(),
            0b000,
            rs1.index().into(),
            rs2.index().into(),
            F7_MACMSU,
        ),
        Instr::Msu { rd, rs1, rs2 } => r_type(
            OP_OP,
            rd.index().into(),
            0b001,
            rs1.index().into(),
            rs2.index().into(),
            F7_MACMSU,
        ),
        Instr::Clip { rd, rs1, bits } => {
            check_urange("p.clip", bits as i64, 5)?;
            r_type(
                OP_OP,
                rd.index().into(),
                0b001,
                rs1.index().into(),
                bits.into(),
                F7_CLIP,
            )
        }
        Instr::PulpAlu { op, rd, rs1, rs2 } => r_type(
            OP_OP,
            rd.index().into(),
            pulp_alu_funct3(op),
            rs1.index().into(),
            rs2.index().into(),
            F7_PULPALU,
        ),
        Instr::Simd { op, rd, rs1, rs2 } => r_type(
            OP_SIMD,
            rd.index().into(),
            0b000,
            rs1.index().into(),
            rs2.index().into(),
            simd_funct7(op),
        ),
        Instr::LpStarti { l, offset } => {
            let half = halfword_offset("lp.starti", offset)?;
            check_range("lp.starti", half as i64, 12)?;
            i_type(OP_HWLOOP, l.index() as u32, 0b000, 0, half)
        }
        Instr::LpEndi { l, offset } => {
            let half = halfword_offset("lp.endi", offset)?;
            check_range("lp.endi", half as i64, 12)?;
            i_type(OP_HWLOOP, l.index() as u32, 0b001, 0, half)
        }
        Instr::LpCount { l, rs1 } => {
            i_type(OP_HWLOOP, l.index() as u32, 0b010, rs1.index().into(), 0)
        }
        Instr::LpCounti { l, count } => {
            check_urange("lp.counti", count as i64, 12)?;
            i_type(OP_HWLOOP, l.index() as u32, 0b011, 0, count as i32)
        }
        Instr::LpSetup { l, rs1, offset } => {
            let half = halfword_offset("lp.setup", offset)?;
            check_range("lp.setup", half as i64, 12)?;
            i_type(OP_HWLOOP, l.index() as u32, 0b100, rs1.index().into(), half)
        }
        Instr::LpSetupi { l, count, offset } => {
            check_urange("lp.setupi", count as i64, 5)?;
            let half = halfword_offset("lp.setupi", offset)?;
            check_range("lp.setupi", half as i64, 12)?;
            i_type(OP_HWLOOP, l.index() as u32, 0b101, count.into(), half)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Reg;

    #[test]
    fn encode_known_words() {
        // Cross-checked against riscv-as output.
        // addi a0, zero, 42
        let w = encode(&Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::ZERO,
            imm: 42,
        })
        .unwrap();
        assert_eq!(w, 0x02a0_0513);
        // add a0, a1, a2
        let w = encode(&Instr::Alu {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        })
        .unwrap();
        assert_eq!(w, 0x00c5_8533);
        // lw a0, 4(sp)
        let w = encode(&Instr::Load {
            width: MemWidth::W,
            rd: Reg::A0,
            rs1: Reg::SP,
            offset: 4,
        })
        .unwrap();
        assert_eq!(w, 0x0041_2503);
        // sw a0, 4(sp)
        let w = encode(&Instr::Store {
            width: MemWidth::W,
            rs2: Reg::A0,
            rs1: Reg::SP,
            offset: 4,
        })
        .unwrap();
        assert_eq!(w, 0x00a1_2223);
        // ecall
        assert_eq!(encode(&Instr::Ecall).unwrap(), 0x0000_0073);
        // jal ra, 8
        let w = encode(&Instr::Jal {
            rd: Reg::RA,
            offset: 8,
        })
        .unwrap();
        assert_eq!(w, 0x0080_00ef);
        // beq a0, a1, -4
        let w = encode(&Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: -4,
        })
        .unwrap();
        assert_eq!(w, 0xfeb5_0ee3);
    }

    #[test]
    fn rejects_out_of_range_imm() {
        let err = encode(&Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 4096,
        })
        .unwrap_err();
        assert!(matches!(err, EncodeError::ImmOutOfRange { .. }));
    }

    #[test]
    fn rejects_misaligned_branch() {
        let err = encode(&Instr::Branch {
            cond: BranchCond::Ne,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 3,
        })
        .unwrap_err();
        assert!(matches!(err, EncodeError::MisalignedOffset { .. }));
    }

    #[test]
    fn rejects_unsigned_store() {
        let err = encode(&Instr::Store {
            width: MemWidth::Bu,
            rs2: Reg::A0,
            rs1: Reg::A1,
            offset: 0,
        })
        .unwrap_err();
        assert_eq!(err, EncodeError::BadStoreWidth);
    }

    #[test]
    fn rejects_lui_with_low_bits() {
        let err = encode(&Instr::Lui {
            rd: Reg::A0,
            imm: 0x1234,
        })
        .unwrap_err();
        assert!(matches!(err, EncodeError::ImmOutOfRange { .. }));
    }
}
