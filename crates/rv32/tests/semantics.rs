//! Semantic tests: every Xpulp operation checked against its Rust
//! equivalent on random operands, plus the hardware-loop register
//! interface (`lp.starti`/`lp.endi`/`lp.count`) that the fused `lp.setup`
//! tests don't cover.

use iw_rv32::{asm::Asm, AluOp, Cpu, LoopIdx, PulpAluOp, Ram, Reg, ShiftOp, SimdOp, Timing};
use proptest::prelude::*;

fn run_binary_op(emit: impl Fn(&mut Asm), a: u32, b: u32) -> u32 {
    let mut asm = Asm::new(0);
    asm.li(Reg::A2, a as i32);
    asm.li(Reg::A3, b as i32);
    emit(&mut asm);
    asm.ecall();
    let mut ram = Ram::new(0, 256);
    ram.write_bytes(0, &asm.assemble().unwrap());
    let mut cpu = Cpu::new(0);
    cpu.run(&mut ram, &Timing::riscy(), 10_000).unwrap();
    cpu.reg(Reg::A4)
}

fn lanes(x: u32) -> (i16, i16) {
    (x as u16 as i16, (x >> 16) as u16 as i16)
}

fn pack(lo: i16, hi: i16) -> u32 {
    (lo as u16 as u32) | ((hi as u16 as u32) << 16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simd_ops_match_reference(a in any::<u32>(), b in any::<u32>()) {
        let (a0, a1) = lanes(a);
        let (b0, b1) = lanes(b);
        let cases: Vec<(SimdOp, u32)> = vec![
            (SimdOp::AddH, pack(a0.wrapping_add(b0), a1.wrapping_add(b1))),
            (SimdOp::SubH, pack(a0.wrapping_sub(b0), a1.wrapping_sub(b1))),
            (SimdOp::MinH, pack(a0.min(b0), a1.min(b1))),
            (SimdOp::MaxH, pack(a0.max(b0), a1.max(b1))),
            (
                SimdOp::DotspH,
                (i32::from(a0) * i32::from(b0)).wrapping_add(i32::from(a1) * i32::from(b1))
                    as u32,
            ),
            (SimdOp::PackH, pack(a0, b0)),
        ];
        for (op, expected) in cases {
            let got = run_binary_op(
                |asm| asm.simd(op, Reg::A4, Reg::A2, Reg::A3),
                a,
                b,
            );
            prop_assert_eq!(got, expected, "op {:?}", op);
        }
    }

    #[test]
    fn sdotsp_accumulates(a in any::<u32>(), b in any::<u32>(), acc in any::<i32>()) {
        let (a0, a1) = lanes(a);
        let (b0, b1) = lanes(b);
        let expected = acc.wrapping_add(
            (i32::from(a0) * i32::from(b0)).wrapping_add(i32::from(a1) * i32::from(b1)),
        ) as u32;
        let got = run_binary_op(
            |asm| {
                asm.li(Reg::A4, acc);
                asm.simd(SimdOp::SdotspH, Reg::A4, Reg::A2, Reg::A3);
            },
            a,
            b,
        );
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn pulp_alu_ops_match_reference(a in any::<u32>(), b in any::<u32>()) {
        let cases: Vec<(PulpAluOp, u32)> = vec![
            (PulpAluOp::Abs, (a as i32).unsigned_abs()),
            (PulpAluOp::Min, (a as i32).min(b as i32) as u32),
            (PulpAluOp::Max, (a as i32).max(b as i32) as u32),
            (PulpAluOp::Minu, a.min(b)),
            (PulpAluOp::Maxu, a.max(b)),
            (PulpAluOp::Exths, a as u16 as i16 as i32 as u32),
            (PulpAluOp::Extuh, a & 0xffff),
        ];
        for (op, expected) in cases {
            let got = run_binary_op(
                |asm| asm.pulp_alu(op, Reg::A4, Reg::A2, Reg::A3),
                a,
                b,
            );
            prop_assert_eq!(got, expected, "op {:?}", op);
        }
    }

    #[test]
    fn mac_msu_match_reference(a in any::<i32>(), b in any::<i32>(), acc in any::<i32>()) {
        let mac = run_binary_op(
            |asm| {
                asm.li(Reg::A4, acc);
                asm.mac(Reg::A4, Reg::A2, Reg::A3);
            },
            a as u32,
            b as u32,
        );
        prop_assert_eq!(mac, acc.wrapping_add(a.wrapping_mul(b)) as u32);
        let msu = run_binary_op(
            |asm| {
                asm.li(Reg::A4, acc);
                asm.emit(iw_rv32::Instr::Msu {
                    rd: Reg::A4,
                    rs1: Reg::A2,
                    rs2: Reg::A3,
                });
            },
            a as u32,
            b as u32,
        );
        prop_assert_eq!(msu, acc.wrapping_sub(a.wrapping_mul(b)) as u32);
    }

    #[test]
    fn clip_matches_reference(a in any::<i32>(), bits in 1u8..31) {
        let lo = -(1i32 << (bits - 1));
        let hi = (1i32 << (bits - 1)) - 1;
        let got = run_binary_op(
            |asm| asm.clip(Reg::A4, Reg::A2, bits),
            a as u32,
            0,
        );
        prop_assert_eq!(got as i32, a.clamp(lo, hi));
    }

    #[test]
    fn shifts_match_reference(a in any::<u32>(), sh in 0u8..32) {
        for (op, expected) in [
            (ShiftOp::Slli, a << sh),
            (ShiftOp::Srli, a >> sh),
            (ShiftOp::Srai, ((a as i32) >> sh) as u32),
        ] {
            let got = run_binary_op(
                |asm| asm.shift(op, Reg::A4, Reg::A2, sh),
                a,
                0,
            );
            prop_assert_eq!(got, expected, "op {:?} sh {}", op, sh);
        }
    }

    #[test]
    fn mulh_family_match_reference(a in any::<u32>(), b in any::<u32>()) {
        let cases = [
            (AluOp::Mulh, ((i64::from(a as i32) * i64::from(b as i32)) >> 32) as u32),
            (AluOp::Mulhsu, ((i64::from(a as i32) * i64::from(b)) >> 32) as u32),
            (AluOp::Mulhu, ((u64::from(a) * u64::from(b)) >> 32) as u32),
        ];
        for (op, expected) in cases {
            let got = run_binary_op(
                |asm| asm.alu(op, Reg::A4, Reg::A2, Reg::A3),
                a,
                b,
            );
            prop_assert_eq!(got, expected, "op {:?}", op);
        }
    }
}

#[test]
fn explicit_hwloop_registers_work() {
    // lp.starti / lp.endi / lp.counti programmed separately (not fused
    // lp.setup): body of two instructions executed 5 times.
    let mut asm = Asm::new(0);
    asm.li(Reg::A0, 0);
    asm.li(Reg::A1, 0);
    let body = asm.new_label();
    let end = asm.new_label();
    asm.lp_starti_to(LoopIdx::L0, body);
    asm.lp_endi_to(LoopIdx::L0, end);
    asm.lp_counti(LoopIdx::L0, 5);
    asm.bind(body);
    asm.addi(Reg::A0, Reg::A0, 2);
    asm.addi(Reg::A1, Reg::A1, 3);
    asm.bind(end);
    asm.ecall();
    let mut ram = Ram::new(0, 256);
    ram.write_bytes(0, &asm.assemble().unwrap());
    let mut cpu = Cpu::new(0);
    cpu.run(&mut ram, &Timing::riscy(), 1_000).unwrap();
    assert_eq!(cpu.reg(Reg::A0), 10);
    assert_eq!(cpu.reg(Reg::A1), 15);
}

#[test]
fn lp_count_from_register() {
    let mut asm = Asm::new(0);
    asm.li(Reg::A0, 0);
    asm.li(Reg::T0, 7);
    let body = asm.new_label();
    let end = asm.new_label();
    asm.lp_starti_to(LoopIdx::L0, body);
    asm.lp_endi_to(LoopIdx::L0, end);
    asm.lp_count(LoopIdx::L0, Reg::T0);
    asm.bind(body);
    asm.addi(Reg::A0, Reg::A0, 1);
    asm.bind(end);
    asm.ecall();
    let mut ram = Ram::new(0, 256);
    ram.write_bytes(0, &asm.assemble().unwrap());
    let mut cpu = Cpu::new(0);
    cpu.run(&mut ram, &Timing::riscy(), 1_000).unwrap();
    assert_eq!(cpu.reg(Reg::A0), 7);
}

#[test]
fn jalr_links_and_jumps() {
    // call/return through jalr.
    let mut asm = Asm::new(0);
    let func = asm.new_label();
    let after = asm.new_label();
    asm.li(Reg::A0, 1);
    asm.jal_to(Reg::RA, func);
    asm.bind(after);
    asm.addi(Reg::A0, Reg::A0, 100); // after return
    asm.ecall();
    asm.bind(func);
    asm.addi(Reg::A0, Reg::A0, 10);
    asm.jalr(Reg::ZERO, Reg::RA, 0); // ret
    let mut ram = Ram::new(0, 256);
    ram.write_bytes(0, &asm.assemble().unwrap());
    let mut cpu = Cpu::new(0);
    cpu.run(&mut ram, &Timing::riscy(), 1_000).unwrap();
    assert_eq!(cpu.reg(Reg::A0), 111);
}

#[test]
fn store_byte_and_halfword_preserve_neighbours() {
    let mut asm = Asm::new(0);
    asm.li(Reg::T0, 0x100);
    asm.li(Reg::T1, 0x7777_7777u32 as i32);
    asm.sw(Reg::T1, Reg::T0, 0);
    asm.li(Reg::T2, 0xAB);
    asm.store(iw_rv32::MemWidth::B, Reg::T2, Reg::T0, 1);
    asm.lw(Reg::A0, Reg::T0, 0);
    asm.ecall();
    let mut ram = Ram::new(0, 512);
    ram.write_bytes(0, &asm.assemble().unwrap());
    let mut cpu = Cpu::new(0);
    cpu.run(&mut ram, &Timing::riscy(), 1_000).unwrap();
    assert_eq!(cpu.reg(Reg::A0), 0x7777_AB77);
}
