//! Property tests: every constructible instruction encodes to a word that
//! decodes back to itself, and decoding arbitrary words never panics.

use iw_rv32::{
    decode, encode, AluImmOp, AluOp, BranchCond, Instr, LoopIdx, MemWidth, PulpAluOp, Reg,
    ShiftOp, SimdOp,
};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Mulh),
        Just(AluOp::Mulhsu),
        Just(AluOp::Mulhu),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
    ]
}

fn any_simd_op() -> impl Strategy<Value = SimdOp> {
    prop_oneof![
        Just(SimdOp::AddH),
        Just(SimdOp::SubH),
        Just(SimdOp::MinH),
        Just(SimdOp::MaxH),
        Just(SimdOp::DotspH),
        Just(SimdOp::SdotspH),
        Just(SimdOp::PackH),
    ]
}

fn any_pulp_alu_op() -> impl Strategy<Value = PulpAluOp> {
    prop_oneof![
        Just(PulpAluOp::Abs),
        Just(PulpAluOp::Min),
        Just(PulpAluOp::Max),
        Just(PulpAluOp::Minu),
        Just(PulpAluOp::Maxu),
        Just(PulpAluOp::Exths),
        Just(PulpAluOp::Extuh),
    ]
}

fn any_loop() -> impl Strategy<Value = LoopIdx> {
    prop_oneof![Just(LoopIdx::L0), Just(LoopIdx::L1)]
}

fn any_load_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![
        Just(MemWidth::B),
        Just(MemWidth::H),
        Just(MemWidth::W),
        Just(MemWidth::Bu),
        Just(MemWidth::Hu),
    ]
}

fn any_store_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![Just(MemWidth::B), Just(MemWidth::H), Just(MemWidth::W)]
}

fn any_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (any_reg(), -(1i32 << 19)..(1i32 << 19)).prop_map(|(rd, v)| Instr::Lui { rd, imm: v << 12 }),
        (any_reg(), -(1i32 << 19)..(1i32 << 19))
            .prop_map(|(rd, v)| Instr::Auipc { rd, imm: v << 12 }),
        (any_reg(), -(1i32 << 19)..(1i32 << 19) - 1)
            .prop_map(|(rd, o)| Instr::Jal { rd, offset: o * 2 }),
        (any_reg(), any_reg(), -2048i32..2048)
            .prop_map(|(rd, rs1, offset)| Instr::Jalr { rd, rs1, offset }),
        (
            prop_oneof![
                Just(BranchCond::Eq),
                Just(BranchCond::Ne),
                Just(BranchCond::Lt),
                Just(BranchCond::Ge),
                Just(BranchCond::Ltu),
                Just(BranchCond::Geu)
            ],
            any_reg(),
            any_reg(),
            -2048i32..2048
        )
            .prop_map(|(cond, rs1, rs2, o)| Instr::Branch {
                cond,
                rs1,
                rs2,
                offset: o * 2
            }),
        (any_load_width(), any_reg(), any_reg(), -2048i32..2048).prop_map(
            |(width, rd, rs1, offset)| Instr::Load {
                width,
                rd,
                rs1,
                offset
            }
        ),
        (any_store_width(), any_reg(), any_reg(), -2048i32..2048).prop_map(
            |(width, rs2, rs1, offset)| Instr::Store {
                width,
                rs2,
                rs1,
                offset
            }
        ),
        (
            prop_oneof![
                Just(AluImmOp::Addi),
                Just(AluImmOp::Slti),
                Just(AluImmOp::Sltiu),
                Just(AluImmOp::Xori),
                Just(AluImmOp::Ori),
                Just(AluImmOp::Andi)
            ],
            any_reg(),
            any_reg(),
            -2048i32..2048
        )
            .prop_map(|(op, rd, rs1, imm)| Instr::AluImm { op, rd, rs1, imm }),
        (
            prop_oneof![Just(ShiftOp::Slli), Just(ShiftOp::Srli), Just(ShiftOp::Srai)],
            any_reg(),
            any_reg(),
            0u8..32
        )
            .prop_map(|(op, rd, rs1, shamt)| Instr::Shift { op, rd, rs1, shamt }),
        (any_alu_op(), any_reg(), any_reg(), any_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Alu { op, rd, rs1, rs2 }),
        Just(Instr::Ecall),
        Just(Instr::Ebreak),
        Just(Instr::Fence),
        (any_load_width(), any_reg(), any_reg(), -2048i32..2048).prop_map(
            |(width, rd, rs1, offset)| Instr::LoadPost {
                width,
                rd,
                rs1,
                offset
            }
        ),
        (any_store_width(), any_reg(), any_reg(), -2048i32..2048).prop_map(
            |(width, rs2, rs1, offset)| Instr::StorePost {
                width,
                rs2,
                rs1,
                offset
            }
        ),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rs1, rs2)| Instr::Mac { rd, rs1, rs2 }),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rs1, rs2)| Instr::Msu { rd, rs1, rs2 }),
        (any_reg(), any_reg(), 0u8..32).prop_map(|(rd, rs1, bits)| Instr::Clip { rd, rs1, bits }),
        (any_pulp_alu_op(), any_reg(), any_reg(), any_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::PulpAlu { op, rd, rs1, rs2 }),
        (any_simd_op(), any_reg(), any_reg(), any_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Simd { op, rd, rs1, rs2 }),
        (any_loop(), -2048i32..2048).prop_map(|(l, o)| Instr::LpStarti { l, offset: o * 2 }),
        (any_loop(), -2048i32..2048).prop_map(|(l, o)| Instr::LpEndi { l, offset: o * 2 }),
        (any_loop(), any_reg()).prop_map(|(l, rs1)| Instr::LpCount { l, rs1 }),
        (any_loop(), 0u16..4096).prop_map(|(l, count)| Instr::LpCounti { l, count }),
        (any_loop(), any_reg(), -2048i32..2048)
            .prop_map(|(l, rs1, o)| Instr::LpSetup { l, rs1, offset: o * 2 }),
        (any_loop(), 0u8..32, -2048i32..2048)
            .prop_map(|(l, count, o)| Instr::LpSetupi { l, count, offset: o * 2 }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(instr in any_instr()) {
        let word = encode(&instr).expect("generated instruction must encode");
        let back = decode(word).expect("encoded word must decode");
        prop_assert_eq!(back, instr);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn decoded_words_reencode_identically(word in any::<u32>()) {
        if let Ok(instr) = decode(word) {
            // Decode is not injective on don't-care bits (e.g. fence), so we
            // only require that re-encoding yields a word that decodes to the
            // same instruction.
            let word2 = encode(&instr).expect("decoded instruction must re-encode");
            prop_assert_eq!(decode(word2).unwrap(), instr);
        }
    }
}
