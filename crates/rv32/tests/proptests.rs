//! Property tests: every constructible instruction encodes to a word that
//! decodes back to itself, decoding arbitrary words never panics, and the
//! accelerated execution paths — pre-decoded ([`Cpu::run_cached`]) and
//! block-compiled ([`Cpu::run_blocks`], both fusion levels) — are bit- and
//! cycle-identical to the fetch-and-decode reference ([`Cpu::run`]),
//! including on faults, cycle-limit exits and self-modifying stores.

use iw_rv32::{
    decode, encode, AluImmOp, AluOp, BlockCache, BranchCond, Cpu, CpuError, DecodeCache,
    FusionLevel, Instr, LoopIdx, MemWidth, PulpAluOp, Ram, Reg, RunResult, ShiftOp, SimdOp, Timing,
};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Mulh),
        Just(AluOp::Mulhsu),
        Just(AluOp::Mulhu),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
    ]
}

fn any_simd_op() -> impl Strategy<Value = SimdOp> {
    prop_oneof![
        Just(SimdOp::AddH),
        Just(SimdOp::SubH),
        Just(SimdOp::MinH),
        Just(SimdOp::MaxH),
        Just(SimdOp::DotspH),
        Just(SimdOp::SdotspH),
        Just(SimdOp::PackH),
    ]
}

fn any_pulp_alu_op() -> impl Strategy<Value = PulpAluOp> {
    prop_oneof![
        Just(PulpAluOp::Abs),
        Just(PulpAluOp::Min),
        Just(PulpAluOp::Max),
        Just(PulpAluOp::Minu),
        Just(PulpAluOp::Maxu),
        Just(PulpAluOp::Exths),
        Just(PulpAluOp::Extuh),
    ]
}

fn any_loop() -> impl Strategy<Value = LoopIdx> {
    prop_oneof![Just(LoopIdx::L0), Just(LoopIdx::L1)]
}

fn any_load_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![
        Just(MemWidth::B),
        Just(MemWidth::H),
        Just(MemWidth::W),
        Just(MemWidth::Bu),
        Just(MemWidth::Hu),
    ]
}

fn any_store_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![Just(MemWidth::B), Just(MemWidth::H), Just(MemWidth::W)]
}

fn any_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (any_reg(), -(1i32 << 19)..(1i32 << 19))
            .prop_map(|(rd, v)| Instr::Lui { rd, imm: v << 12 }),
        (any_reg(), -(1i32 << 19)..(1i32 << 19))
            .prop_map(|(rd, v)| Instr::Auipc { rd, imm: v << 12 }),
        (any_reg(), -(1i32 << 19)..(1i32 << 19) - 1)
            .prop_map(|(rd, o)| Instr::Jal { rd, offset: o * 2 }),
        (any_reg(), any_reg(), -2048i32..2048).prop_map(|(rd, rs1, offset)| Instr::Jalr {
            rd,
            rs1,
            offset
        }),
        (
            prop_oneof![
                Just(BranchCond::Eq),
                Just(BranchCond::Ne),
                Just(BranchCond::Lt),
                Just(BranchCond::Ge),
                Just(BranchCond::Ltu),
                Just(BranchCond::Geu)
            ],
            any_reg(),
            any_reg(),
            -2048i32..2048
        )
            .prop_map(|(cond, rs1, rs2, o)| Instr::Branch {
                cond,
                rs1,
                rs2,
                offset: o * 2
            }),
        (any_load_width(), any_reg(), any_reg(), -2048i32..2048).prop_map(
            |(width, rd, rs1, offset)| Instr::Load {
                width,
                rd,
                rs1,
                offset
            }
        ),
        (any_store_width(), any_reg(), any_reg(), -2048i32..2048).prop_map(
            |(width, rs2, rs1, offset)| Instr::Store {
                width,
                rs2,
                rs1,
                offset
            }
        ),
        (
            prop_oneof![
                Just(AluImmOp::Addi),
                Just(AluImmOp::Slti),
                Just(AluImmOp::Sltiu),
                Just(AluImmOp::Xori),
                Just(AluImmOp::Ori),
                Just(AluImmOp::Andi)
            ],
            any_reg(),
            any_reg(),
            -2048i32..2048
        )
            .prop_map(|(op, rd, rs1, imm)| Instr::AluImm { op, rd, rs1, imm }),
        (
            prop_oneof![
                Just(ShiftOp::Slli),
                Just(ShiftOp::Srli),
                Just(ShiftOp::Srai)
            ],
            any_reg(),
            any_reg(),
            0u8..32
        )
            .prop_map(|(op, rd, rs1, shamt)| Instr::Shift { op, rd, rs1, shamt }),
        (any_alu_op(), any_reg(), any_reg(), any_reg()).prop_map(|(op, rd, rs1, rs2)| Instr::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        Just(Instr::Ecall),
        Just(Instr::Ebreak),
        Just(Instr::Fence),
        (any_load_width(), any_reg(), any_reg(), -2048i32..2048).prop_map(
            |(width, rd, rs1, offset)| Instr::LoadPost {
                width,
                rd,
                rs1,
                offset
            }
        ),
        (any_store_width(), any_reg(), any_reg(), -2048i32..2048).prop_map(
            |(width, rs2, rs1, offset)| Instr::StorePost {
                width,
                rs2,
                rs1,
                offset
            }
        ),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rs1, rs2)| Instr::Mac { rd, rs1, rs2 }),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rs1, rs2)| Instr::Msu { rd, rs1, rs2 }),
        (any_reg(), any_reg(), 0u8..32).prop_map(|(rd, rs1, bits)| Instr::Clip { rd, rs1, bits }),
        (any_pulp_alu_op(), any_reg(), any_reg(), any_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::PulpAlu { op, rd, rs1, rs2 }),
        (any_simd_op(), any_reg(), any_reg(), any_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Simd { op, rd, rs1, rs2 }),
        (any_loop(), -2048i32..2048).prop_map(|(l, o)| Instr::LpStarti { l, offset: o * 2 }),
        (any_loop(), -2048i32..2048).prop_map(|(l, o)| Instr::LpEndi { l, offset: o * 2 }),
        (any_loop(), any_reg()).prop_map(|(l, rs1)| Instr::LpCount { l, rs1 }),
        (any_loop(), 0u16..4096).prop_map(|(l, count)| Instr::LpCounti { l, count }),
        (any_loop(), any_reg(), -2048i32..2048).prop_map(|(l, rs1, o)| Instr::LpSetup {
            l,
            rs1,
            offset: o * 2
        }),
        (any_loop(), 0u8..32, -2048i32..2048).prop_map(|(l, count, o)| Instr::LpSetupi {
            l,
            count,
            offset: o * 2
        }),
    ]
}

const MEM_SIZE: usize = 0x2000;
const DATA_BASE: u32 = 0x1000;
const MAX_CYCLES: u64 = 5_000;

/// Full post-run machine state, for exact cached-vs-uncached comparison.
#[derive(Debug, PartialEq)]
struct Outcome {
    result: Result<RunResult, CpuError>,
    regs: Vec<u32>,
    pc: u32,
    profile: iw_rv32::ExecProfile,
    mem: Vec<u8>,
}

fn fresh_machine(words: &[u32], regs: &[u32]) -> (Cpu, Ram) {
    let mut ram = Ram::new(0, MEM_SIZE);
    for (i, w) in words.iter().enumerate() {
        ram.write_bytes(4 * i as u32, &w.to_le_bytes());
    }
    for i in 0..(MEM_SIZE as u32 - DATA_BASE) {
        ram.write_bytes(DATA_BASE + i, &[(i as u8).wrapping_mul(31)]);
    }
    let mut cpu = Cpu::new(0);
    for (i, &v) in regs.iter().enumerate() {
        cpu.set_reg(Reg::new(i as u8 + 1), v);
    }
    (cpu, ram)
}

fn outcome(cpu: Cpu, ram: &Ram, result: Result<RunResult, CpuError>) -> Outcome {
    Outcome {
        result,
        regs: (0..32).map(|i| cpu.reg(Reg::new(i))).collect(),
        pc: cpu.pc(),
        profile: *cpu.profile(),
        mem: ram.read_bytes(0, MEM_SIZE).to_vec(),
    }
}

fn run_uncached(words: &[u32], regs: &[u32]) -> Outcome {
    let (mut cpu, mut ram) = fresh_machine(words, regs);
    let result = cpu.run(&mut ram, &Timing::riscy(), MAX_CYCLES);
    outcome(cpu, &ram, result)
}

fn run_cached(words: &[u32], regs: &[u32], window: u32) -> Outcome {
    let (mut cpu, mut ram) = fresh_machine(words, regs);
    let mut cache = DecodeCache::new(0, window);
    let result = cpu.run_cached(&mut ram, &Timing::riscy(), MAX_CYCLES, &mut cache);
    outcome(cpu, &ram, result)
}

fn run_blocks(words: &[u32], regs: &[u32], window: u32, fusion: FusionLevel) -> Outcome {
    let (mut cpu, mut ram) = fresh_machine(words, regs);
    let mut cache = BlockCache::new(0, window, true, fusion);
    let result = cpu.run_blocks(&mut ram, &Timing::riscy(), MAX_CYCLES, &mut cache);
    outcome(cpu, &ram, result)
}

/// Asserts every accelerated path reproduces `reference` exactly.
fn assert_all_paths_match(words: &[u32], regs: &[u32], reference: &Outcome) {
    let cached = run_cached(words, regs, MEM_SIZE as u32);
    assert_eq!(&cached, reference, "run_cached, full window");
    let narrow = run_cached(words, regs, 0x40);
    assert_eq!(&narrow, reference, "run_cached, narrow window");
    for fusion in [FusionLevel::SharedMem, FusionLevel::Full] {
        let blocks = run_blocks(words, regs, MEM_SIZE as u32, fusion);
        assert_eq!(&blocks, reference, "run_blocks {fusion:?}, full window");
        let narrow = run_blocks(words, regs, 0x40, fusion);
        assert_eq!(&narrow, reference, "run_blocks {fusion:?}, narrow window");
    }
}

/// Register values biased into the mapped address range so that random
/// loads/stores frequently hit memory instead of faulting immediately.
fn any_regs() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..MEM_SIZE as u32, 31)
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(instr in any_instr()) {
        let word = encode(&instr).expect("generated instruction must encode");
        let back = decode(word).expect("encoded word must decode");
        prop_assert_eq!(back, instr);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn decoded_words_reencode_identically(word in any::<u32>()) {
        if let Ok(instr) = decode(word) {
            // Decode is not injective on don't-care bits (e.g. fence), so we
            // only require that re-encoding yields a word that decodes to the
            // same instruction.
            let word2 = encode(&instr).expect("decoded instruction must re-encode");
            prop_assert_eq!(decode(word2).unwrap(), instr);
        }
    }

    /// Arbitrary programs — including ones that branch wildly, fault, or
    /// spin until the cycle limit — behave identically on the cached,
    /// block-compiled and uncached paths, with both a full-memory window
    /// and a narrow one that forces out-of-window fallback fetches.
    #[test]
    fn cached_execution_is_bit_exact(
        instrs in prop::collection::vec(any_instr(), 0..40),
        regs in any_regs(),
    ) {
        let mut words: Vec<u32> = instrs
            .iter()
            .map(|i| encode(i).expect("generated instruction must encode"))
            .collect();
        words.push(encode(&Instr::Ecall).unwrap());

        let reference = run_uncached(&words, &regs);
        assert_all_paths_match(&words, &regs, &reference);
    }

    /// Self-modifying code: a store patches one of the instructions ahead
    /// of the pc; the cache must invalidate the line so the patched word
    /// executes, exactly as on the uncached path.
    #[test]
    fn self_modifying_store_stays_bit_exact(
        slot in 0usize..8,
        k in -2048i32..2048,
    ) {
        const SLOTS: usize = 8;
        // Word 0 stores T0 (the patch word) over the chosen `addi` slot;
        // the patch retargets that slot's increment from 1 to `k`.
        let mut words = vec![encode(&Instr::Store {
            width: MemWidth::W,
            rs2: Reg::T0,
            rs1: Reg::T1,
            offset: 0,
        })
        .unwrap()];
        let addi_one = Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 1,
        };
        words.extend(std::iter::repeat_n(encode(&addi_one).unwrap(), SLOTS));
        words.push(encode(&Instr::Ecall).unwrap());

        let patch = encode(&Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: k,
        })
        .unwrap();
        let mut regs = vec![0u32; 31];
        regs[Reg::T0.index() as usize - 1] = patch;
        regs[Reg::T1.index() as usize - 1] = 4 * (1 + slot) as u32;

        let reference = run_uncached(&words, &regs);
        assert_all_paths_match(&words, &regs, &reference);
        // And the patch must actually have taken effect.
        let a0 = reference.regs[Reg::A0.index() as usize];
        prop_assert_eq!(a0, ((SLOTS as i32 - 1) + k) as u32);
    }

    /// Self-modifying-code fuzzing: programs randomly interleaved with
    /// stores aimed back into the code region, so compiled blocks are
    /// demoted mid-run — sometimes the very block being executed. Every
    /// accelerated path must track the reference bit-for-bit through the
    /// demotions and recompiles.
    #[test]
    fn random_code_stores_stay_bit_exact(
        prog in prop::collection::vec(
            prop_oneof![
                any_instr(),
                any_instr(),
                // Aligned word stores into the first 48 words: rewrite
                // whole instructions, exercising demotion + recompile.
                (any_reg(), 0i32..48).prop_map(|(rs2, w)| Instr::Store {
                    width: MemWidth::W,
                    rs2,
                    rs1: Reg::ZERO,
                    offset: w * 4,
                }),
                // Narrow/unaligned stores into the code bytes: chip at
                // single instruction words, including spanning patterns.
                (any_store_width(), any_reg(), 0i32..192).prop_map(
                    |(width, rs2, offset)| Instr::Store {
                        width,
                        rs2,
                        rs1: Reg::ZERO,
                        offset,
                    }
                ),
            ],
            0..40,
        ),
        regs in any_regs(),
    ) {
        let mut words: Vec<u32> = prog
            .iter()
            .map(|i| encode(i).expect("generated instruction must encode"))
            .collect();
        words.push(encode(&Instr::Ecall).unwrap());

        let reference = run_uncached(&words, &regs);
        assert_all_paths_match(&words, &regs, &reference);
    }
}
