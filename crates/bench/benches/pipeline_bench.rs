//! Criterion benches for the signal-processing pipeline: synthesis,
//! R-peak detection and feature extraction (the X2 feature stage).

use criterion::{criterion_group, criterion_main, Criterion};
use iw_biosig::{detect_r_peaks, extract_features, FeatureConfig, RPeakConfig};
use iw_sensors::{generate_dataset, synth_ecg, DatasetConfig, EcgConfig, StressLevel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_signal_path(c: &mut Criterion) {
    let ecg_cfg = EcgConfig::default();
    let seg = synth_ecg(
        &mut StdRng::seed_from_u64(1),
        StressLevel::Medium,
        60.0,
        &ecg_cfg,
    );
    c.bench_function("synth_ecg_60s", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| synth_ecg(&mut rng, StressLevel::Medium, 60.0, &ecg_cfg));
    });
    c.bench_function("pan_tompkins_60s", |b| {
        let cfg = RPeakConfig::new(ecg_cfg.fs_hz);
        b.iter(|| detect_r_peaks(&seg.samples, &cfg));
    });

    let ds_cfg = DatasetConfig {
        windows_per_level: 1,
        window_s: 60.0,
        ..DatasetConfig::default()
    };
    let windows = generate_dataset(&mut StdRng::seed_from_u64(3), &ds_cfg);
    let fc = FeatureConfig::new(ds_cfg.ecg.fs_hz, ds_cfg.gsr.fs_hz);
    c.bench_function("extract_features_60s_window", |b| {
        b.iter(|| extract_features(&windows[0], &fc));
    });
}

criterion_group!(benches, bench_signal_path);
criterion_main!(benches);
