//! Criterion benches for the harvesting models (Tables I/II drivers) and
//! the day-scale battery simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use iw_harvest::{
    daily_intake, simulate_battery, Battery, EnvProfile, LightCondition, SolarHarvester,
    TegHarvester, ThermalCondition,
};

fn bench_models(c: &mut Criterion) {
    let solar = SolarHarvester::infiniwolf();
    let teg = TegHarvester::infiniwolf();
    c.bench_function("solar_point", |b| {
        b.iter(|| solar.battery_intake_w(&LightCondition::indoor()));
    });
    c.bench_function("teg_point", |b| {
        b.iter(|| teg.battery_intake_w(&ThermalCondition::cool_windy()));
    });
    c.bench_function("daily_intake", |b| {
        b.iter(|| daily_intake(&EnvProfile::paper_indoor_day(), &solar, &teg));
    });
}

fn bench_day_simulation(c: &mut Criterion) {
    let solar = SolarHarvester::infiniwolf();
    let teg = TegHarvester::infiniwolf();
    let mut group = c.benchmark_group("battery_day_sim");
    group.sample_size(10);
    group.bench_function("dt_10s", |b| {
        b.iter(|| {
            let mut battery = Battery::infiniwolf();
            battery.set_soc(0.5);
            simulate_battery(
                &EnvProfile::paper_indoor_day(),
                &solar,
                &teg,
                &mut battery,
                |_, _| 250e-6,
                10.0,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_models, bench_day_simulation);
criterion_main!(benches);
