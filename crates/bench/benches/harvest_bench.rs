//! Criterion benches for the harvesting models (Tables I/II drivers) and
//! the day-scale battery simulation on the discrete-event engine.

use criterion::{criterion_group, criterion_main, Criterion};
use infiniwolf::{detection_costs, DetectionBudget};
use iw_harvest::{
    daily_intake, EnvProfile, LightCondition, SolarHarvester, TegHarvester, ThermalCondition,
};
use iw_sim::{DetectionPolicy, DeviceConfig};

fn bench_models(c: &mut Criterion) {
    let solar = SolarHarvester::infiniwolf();
    let teg = TegHarvester::infiniwolf();
    c.bench_function("solar_point", |b| {
        b.iter(|| solar.battery_intake_w(&LightCondition::indoor()));
    });
    c.bench_function("teg_point", |b| {
        b.iter(|| teg.battery_intake_w(&ThermalCondition::cool_windy()));
    });
    c.bench_function("daily_intake", |b| {
        b.iter(|| daily_intake(&EnvProfile::paper_indoor_day(), &solar, &teg));
    });
}

fn bench_day_simulation(c: &mut Criterion) {
    let costs = detection_costs(&DetectionBudget::paper());
    let mut group = c.benchmark_group("battery_day_sim");
    group.sample_size(10);
    group.bench_function("event_engine_24min", |b| {
        b.iter(|| {
            let mut cfg = DeviceConfig::new(
                EnvProfile::paper_indoor_day(),
                DetectionPolicy::FixedRate { per_minute: 24.0 },
                costs,
            );
            cfg.battery.set_soc(0.5);
            cfg.run()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_models, bench_day_simulation);
criterion_main!(benches);
