//! ISS-throughput bench: simulated instructions per second, pre-decoded
//! (product) vs uncached (reference) paths, on both evaluation networks
//! and all four paper targets.
//!
//! Each benchmark simulates one full classification; the printed
//! `instructions=` line gives the dynamic instruction count of that
//! workload, so instructions/second = instructions / mean-sample-time.
//! EXPERIMENTS.md records the derived throughput and the cached/uncached
//! speedup (the acceptance bar is ≥5× on Network B, 8×RI5CY).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iw_bench::evaluation_nets;
use iw_kernels::{FixedTarget, PreparedFixed};

fn bench_iss_throughput(c: &mut Criterion) {
    for (name, _, fixed, qin) in evaluation_nets() {
        let group_name = format!("iss_throughput/{name}");
        let mut group = c.benchmark_group(&group_name);
        group.sample_size(10);
        for target in FixedTarget::paper_targets() {
            // Deployment (kernel emission, assembly, pre-decode, weight
            // image) happens once, outside the timed region: the bench
            // measures simulator throughput, not code generation.
            let prep = PreparedFixed::new(target, &fixed, &qin).expect("deploys");
            let fast = prep.run().expect("target runs");
            let reference = prep.run_uncached().expect("target runs");
            assert_eq!(
                fast, reference,
                "cached and uncached paths must be bit-identical"
            );
            println!(
                "iss_throughput/{name}/{target}: instructions={instructions}",
                target = target.name(),
                instructions = fast.instructions
            );
            group.bench_with_input(
                BenchmarkId::new("predecoded", target.name()),
                &prep,
                |b, prep| {
                    b.iter(|| prep.run().expect("runs"));
                },
            );
            group.bench_with_input(
                BenchmarkId::new("uncached", target.name()),
                &prep,
                |b, prep| {
                    b.iter(|| prep.run_uncached().expect("runs"));
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_iss_throughput);
criterion_main!(benches);
