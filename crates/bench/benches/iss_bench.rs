//! ISS-throughput bench: simulated instructions per second on the
//! block-compiled (superinstruction), pre-decoded (product) and uncached
//! (reference) paths, on both evaluation networks and all four paper
//! targets.
//!
//! The three paths are timed **interleaved** — one sample of each per
//! round — so the reported ratios are within-run and immune to clock
//! drift. Results land in `BENCH_iss.json` at the repo root: per-target
//! simulated Minstr/s for every path, the block-cache hit rate, and the
//! mean superinstruction burst length. EXPERIMENTS.md records the derived
//! table (the acceptance bar is ≥1.3× blocks-over-predecoded on the
//! single-RI5CY and M4 Network-B rows).
//!
//! `--check` skips all timing and instead asserts that the three paths
//! are bit-identical for every registry target on both networks — the
//! fast identity smoke ci.sh runs:
//!
//! ```text
//! cargo bench -p iw-bench --bench iss_bench -- --check
//! ```

use std::time::Instant;

use iw_bench::evaluation_nets;
use iw_kernels::{registry, FixedTarget, PreparedFixed};
use iw_metrics::Registry;

/// Rounds of interleaved timing per (network, target) row.
const ROUNDS: usize = 5;

fn main() {
    if std::env::args().any(|a| a == "--check") {
        check();
    } else {
        bench();
    }
}

/// Identity smoke: every registered target must produce bit-identical
/// runs on all three interpreter paths, for both evaluation networks.
/// No timing loops — this is the ci.sh gate.
fn check() {
    let mut rows = 0;
    for (name, _, fixed, qin) in evaluation_nets() {
        for entry in registry() {
            let prep = PreparedFixed::on(&*entry.machine(), &fixed, &qin).expect("deploys");
            let fast = prep.run().expect("cached path runs");
            let reference = prep.run_uncached().expect("reference path runs");
            let blocks = prep.run_blocks().expect("blocks path runs");
            assert_eq!(
                fast,
                reference,
                "{name}/{id}: cached vs reference",
                id = entry.id
            );
            assert_eq!(
                blocks,
                reference,
                "{name}/{id}: blocks vs reference",
                id = entry.id
            );
            rows += 1;
        }
    }
    println!("iss_bench --check: {rows} target×network rows bit-identical on all three paths");
}

/// One timed sample: wall-clock seconds of a single simulated
/// classification.
fn sample<R>(mut f: impl FnMut() -> R) -> f64 {
    let t0 = Instant::now();
    std::hint::black_box(f());
    t0.elapsed().as_secs_f64()
}

struct RowResult {
    target: String,
    instructions: u64,
    uncached_s: f64,
    predecoded_s: f64,
    blocks_s: f64,
    hit_rate: f64,
    avg_burst: f64,
    dispatches: u64,
    gated_breaks: u64,
    /// Pre-decoded-path scheduler picks and burst, on targets with an
    /// event-driven scheduler (the Mr. Wolf rows) — the baseline the
    /// block path's burst is compared against.
    decoded: Option<(u64, f64)>,
}

impl RowResult {
    fn minstr(&self, seconds: f64) -> f64 {
        self.instructions as f64 / seconds / 1e6
    }
}

fn bench() {
    let mut out = String::from("{\n  \"workloads\": [\n");
    // Machine-readable mirror of the throughput table, in the same
    // sample schema the fleet `--metrics` exporter emits — one gauge
    // per (network, target, path) plus the block-cache statistics.
    let reg = Registry::new();
    let nets = evaluation_nets();
    for (ni, (name, _, fixed, qin)) in nets.iter().enumerate() {
        println!("== iss_throughput/{name} ==");
        let mut rows: Vec<RowResult> = Vec::new();
        for target in FixedTarget::paper_targets() {
            // Deployment (kernel emission, assembly, block compilation,
            // weight image) happens once, outside the timed region: the
            // bench measures simulator throughput, not code generation.
            let prep = PreparedFixed::new(target, fixed, qin).expect("deploys");
            let reference = prep.run_uncached().expect("target runs");
            let fast = prep.run().expect("target runs");
            let (blocks, stats) = prep.run_blocks_stats().expect("target runs");
            assert_eq!(fast, reference, "cached path must be bit-identical");
            assert_eq!(blocks, reference, "blocks path must be bit-identical");

            // Interleaved best-of-N: one sample of each path per round.
            let (mut u, mut p, mut b) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for _ in 0..ROUNDS {
                u = u.min(sample(|| prep.run_uncached().expect("runs")));
                p = p.min(sample(|| prep.run().expect("runs")));
                b = b.min(sample(|| prep.run_blocks().expect("runs")));
            }
            let stats = stats.expect("paper targets collect block stats");
            let (_, decoded) = prep.run_decoded_stats().expect("target runs");
            let row = RowResult {
                target: target.name(),
                instructions: reference.instructions,
                uncached_s: u,
                predecoded_s: p,
                blocks_s: b,
                hit_rate: stats.hit_rate,
                avg_burst: stats.avg_burst,
                dispatches: stats.dispatches,
                gated_breaks: stats.gated_breaks,
                decoded: decoded.map(|d| (d.picks, d.avg_burst)),
            };
            println!(
                "{target:<20} instrs={instructions:>9}  uncached={um:>7.2}  predecoded={pm:>7.2}  \
                 blocks={bm:>7.2} Minstr/s  blocks/predecoded={r:.2}x  hit={hit:.3}  burst={burst:.2}",
                target = row.target,
                instructions = row.instructions,
                um = row.minstr(u),
                pm = row.minstr(p),
                bm = row.minstr(b),
                r = p / b,
                hit = row.hit_rate,
                burst = row.avg_burst,
            );
            if let Some((picks, burst)) = row.decoded {
                println!(
                    "{:<20} sched: decoded burst={burst:.4} ({picks} picks) -> blocks burst={:.4} ({} picks)",
                    "", row.avg_burst, row.dispatches,
                );
            }
            for (path, seconds) in [
                ("uncached", row.uncached_s),
                ("predecoded", row.predecoded_s),
                ("blocks", row.blocks_s),
            ] {
                reg.gauge(
                    "iss_minstr_per_s",
                    &[("network", name), ("target", &row.target), ("path", path)],
                )
                .set(row.minstr(seconds));
            }
            let labels = [("network", name.as_str()), ("target", row.target.as_str())];
            reg.counter("iss_instructions", &labels)
                .add(row.instructions);
            reg.gauge("iss_block_hit_rate", &labels).set(row.hit_rate);
            reg.gauge("iss_block_avg_burst", &labels).set(row.avg_burst);
            rows.push(row);
        }

        out.push_str(&format!(
            "    {{\n      \"network\": {},\n      \"targets\": [\n",
            json_str(name)
        ));
        for (ri, row) in rows.iter().enumerate() {
            let decoded = row.decoded.map_or(String::new(), |(picks, burst)| {
                format!(
                    ",\n          \"decoded_picks\": {picks},\n          \"decoded_avg_burst\": {burst:.4}"
                )
            });
            out.push_str(&format!(
                "        {{\n          \"target\": {target},\n          \"instructions\": {instructions},\n          \"minstr_per_s\": {{\"uncached\": {um:.3}, \"predecoded\": {pm:.3}, \"blocks\": {bm:.3}}},\n          \"speedup_blocks_vs_predecoded\": {sp:.3},\n          \"speedup_blocks_vs_uncached\": {su:.3},\n          \"block_hit_rate\": {hit:.4},\n          \"block_avg_burst\": {burst:.4},\n          \"block_dispatches\": {dispatches},\n          \"block_gated_breaks\": {gated}{decoded}\n        }}{comma}\n",
                target = json_str(&row.target),
                instructions = row.instructions,
                um = row.minstr(row.uncached_s),
                pm = row.minstr(row.predecoded_s),
                bm = row.minstr(row.blocks_s),
                sp = row.predecoded_s / row.blocks_s,
                su = row.uncached_s / row.blocks_s,
                hit = row.hit_rate,
                burst = row.avg_burst,
                dispatches = row.dispatches,
                gated = row.gated_breaks,
                comma = if ri + 1 < rows.len() { "," } else { "" },
            ));
        }
        out.push_str(&format!(
            "      ]\n    }}{}\n",
            if ni + 1 < nets.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"metrics\": ");
    out.push_str(&reg.snapshot().to_json());
    out.push_str("\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_iss.json");
    std::fs::write(path, out).expect("writes BENCH_iss.json");
    println!("wrote {path}");
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
