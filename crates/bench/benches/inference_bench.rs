//! Criterion benches over the inference targets (Tables III/IV drivers)
//! and the A1 core sweep.
//!
//! These measure *simulator wall-clock*; the architectural metric (cycles)
//! is what the `tables` binary reports. Benchmarking the simulation keeps
//! the harness honest about its own cost and catches performance
//! regressions in the ISS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iw_bench::evaluation_nets;
use iw_kernels::{run_fixed, run_m4_float, FixedTarget};

fn bench_targets(c: &mut Criterion) {
    let [(_, net_a, fixed_a, qin_a), _] = evaluation_nets();
    let mut group = c.benchmark_group("network_a_inference");
    group.sample_size(10);
    for target in FixedTarget::paper_targets() {
        group.bench_with_input(
            BenchmarkId::new("fixed", target.name()),
            &target,
            |b, &target| {
                b.iter(|| run_fixed(target, &fixed_a, &qin_a).expect("runs"));
            },
        );
    }
    group.bench_function("float_m4", |b| {
        b.iter(|| run_m4_float(&net_a, &[0.1, -0.2, 0.4, 0.0, -0.6]).expect("runs"));
    });
    group.finish();
}

fn bench_core_sweep(c: &mut Criterion) {
    let [(_, _, fixed_a, qin_a), _] = evaluation_nets();
    let mut group = c.benchmark_group("cluster_core_sweep");
    group.sample_size(10);
    for cores in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(cores), &cores, |b, &cores| {
            b.iter(|| {
                run_fixed(FixedTarget::WolfCluster { cores }, &fixed_a, &qin_a).expect("runs")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_targets, bench_core_sweep);
criterion_main!(benches);
