//! Streaming fleet service CLI: sweep N simulated bracelets across
//! environments × wearers × policies with bounded memory, either
//! in-process (threads) or as a coordinator/worker process pair.
//!
//! ```text
//! cargo run --release -p iw-bench --bin fleet -- --devices 64
//! cargo run --release -p iw-bench --bin fleet -- --devices 4096 --workers 2 --check
//! cargo run --release -p iw-bench --bin fleet -- --devices 64 --faults harsh
//! cargo run --release -p iw-bench --bin fleet -- --devices 64 --trace fleet.json
//! ```
//!
//! `--workers N` re-spawns this binary N times in `--shard i/N` mode.
//! Each worker serially folds its contiguous device-index shard,
//! streaming every per-device record as a length-prefixed binary frame
//! on stdout (`iw_sim::record`), followed by the end marker, its shard
//! `FleetAggregate`, and a stats frame (peak RSS, wall seconds, record
//! count). The coordinator counts records as they arrive — re-folding
//! each one into an independent digest accumulator that must agree with
//! the worker's shipped aggregate — then merges the shard aggregates
//! hierarchically in shard order. No `Vec<DeviceResult>` exists
//! anywhere: per-worker memory is independent of `--devices`.
//!
//! `--check` reruns the sweep serially in-process and exits non-zero
//! unless the aggregate digests are bit-identical — the CI determinism
//! gate. `--faults clean|moderate|harsh` injects the named fault
//! profile. `--trace PATH` re-runs the first `--trace-devices K`
//! devices with tracing enabled and writes one Perfetto timeline with a
//! process group per device (off by default; never affects the
//! aggregate). `--record PATH` appends every streamed record frame to a
//! file (frames arrive interleaved across workers; each record carries
//! its device index).

use std::io::{BufWriter, Read, Write};
use std::process::{Command, Stdio};
use std::time::Instant;

use iw_sim::record::{
    decode_aggregate, decode_result, encode_aggregate, encode_result, read_frame, write_end,
    write_frame, RecordError,
};
use iw_sim::{DigestAccum, FleetAggregate, FleetConfig, FleetReport};

use iw_sim::FaultProfile;

struct Args {
    devices: usize,
    threads: usize,
    seed: u64,
    faults: FaultProfile,
    check: bool,
    workers: usize,
    shard: Option<(usize, usize)>,
    sample: usize,
    trace: Option<String>,
    trace_devices: usize,
    record: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        devices: 64,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
        seed: iw_bench::SEED,
        faults: FaultProfile::Clean,
        check: false,
        workers: 0,
        shard: None,
        sample: 0,
        trace: None,
        trace_devices: 4,
        record: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("bad {name}: {e}"))
        };
        match flag.as_str() {
            "--devices" => args.devices = value("--devices")? as usize,
            "--threads" => args.threads = (value("--threads")? as usize).max(1),
            "--seed" => args.seed = value("--seed")?,
            "--workers" => args.workers = value("--workers")? as usize,
            "--sample" => args.sample = value("--sample")? as usize,
            "--trace-devices" => args.trace_devices = value("--trace-devices")? as usize,
            "--shard" => {
                let spec = it.next().ok_or("--shard needs i/N")?;
                let (i, n) = spec.split_once('/').ok_or("--shard format is i/N")?;
                let i: usize = i.parse().map_err(|e| format!("bad shard index: {e}"))?;
                let n: usize = n.parse().map_err(|e| format!("bad shard count: {e}"))?;
                if n == 0 || i >= n {
                    return Err(format!("shard {i}/{n} out of range"));
                }
                args.shard = Some((i, n));
            }
            "--faults" => {
                let label = it.next().ok_or("--faults needs a value")?;
                args.faults = FaultProfile::parse(&label)
                    .ok_or_else(|| format!("bad --faults '{label}' (clean|moderate|harsh)"))?;
            }
            "--trace" => args.trace = Some(it.next().ok_or("--trace needs a path")?),
            "--record" => args.record = Some(it.next().ok_or("--record needs a path")?),
            "--check" => args.check = true,
            other => {
                return Err(format!(
                    "unknown flag '{other}' (expected --devices N, --threads N, --seed N, \
                     --workers N, --shard i/N, --sample N, --faults clean|moderate|harsh, \
                     --trace PATH, --trace-devices K, --record PATH, --check)"
                ))
            }
        }
    }
    Ok(args)
}

fn fleet_config(args: &Args, threads: usize) -> FleetConfig {
    let mut cfg = iw_bench::d3_fleet_config(args.devices, threads, args.seed, args.faults);
    cfg.sample_devices = args.sample;
    cfg
}

/// Peak resident-set size of this process in bytes (Linux `VmHWM`);
/// 0 where /proc is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Worker stats frame: peak RSS, wall seconds, records streamed.
struct WorkerStats {
    peak_rss_bytes: u64,
    wall_s: f64,
    records: u64,
}

fn encode_stats(s: &WorkerStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    out.extend_from_slice(&s.peak_rss_bytes.to_le_bytes());
    out.extend_from_slice(&s.wall_s.to_bits().to_le_bytes());
    out.extend_from_slice(&s.records.to_le_bytes());
    out
}

fn decode_stats(buf: &[u8]) -> Result<WorkerStats, RecordError> {
    if buf.len() != 24 {
        return Err(RecordError::Truncated);
    }
    Ok(WorkerStats {
        peak_rss_bytes: u64::from_le_bytes(buf[0..8].try_into().unwrap()),
        wall_s: f64::from_bits(u64::from_le_bytes(buf[8..16].try_into().unwrap())),
        records: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
    })
}

/// Worker mode: serially fold the shard, streaming each record as it is
/// produced. Protocol: record frames… · end marker · aggregate frame ·
/// stats frame.
fn run_worker(args: &Args, shard: usize, of: usize) -> Result<(), RecordError> {
    let cfg = fleet_config(args, 1);
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    let start = Instant::now();
    let mut records = 0u64;
    let mut stream_err: Option<RecordError> = None;
    let agg = cfg.run_chunk_with(cfg.shard_range(shard, of), |r| {
        if stream_err.is_none() {
            records += 1;
            if let Err(e) = write_frame(&mut out, &encode_result(r)) {
                stream_err = Some(e);
            }
        }
    });
    if let Some(e) = stream_err {
        return Err(e);
    }
    write_end(&mut out)?;
    write_frame(&mut out, &encode_aggregate(&agg))?;
    let stats = WorkerStats {
        peak_rss_bytes: peak_rss_bytes(),
        wall_s: start.elapsed().as_secs_f64(),
        records,
    };
    write_frame(&mut out, &encode_stats(&stats))?;
    out.flush()?;
    Ok(())
}

/// One worker's decoded handoff on the coordinator side.
struct ShardResult {
    aggregate: FleetAggregate,
    stats: WorkerStats,
}

/// Drains one worker's stdout: counts record frames (re-folding each
/// decoded record into an independent digest accumulator), then decodes
/// the aggregate and stats frames. The re-folded digest must match the
/// worker's shipped aggregate — a per-shard integrity check on the wire
/// format itself.
fn read_worker<R: Read>(
    shard: usize,
    stream: &mut R,
    mut record_sink: Option<&mut dyn Write>,
) -> Result<ShardResult, String> {
    let mut refold = DigestAccum::new();
    let mut records = 0u64;
    while let Some(frame) = read_frame(stream).map_err(|e| format!("shard {shard}: {e}"))? {
        let result =
            decode_result(&frame).map_err(|e| format!("shard {shard} record {records}: {e}"))?;
        refold.fold(result.digest());
        records += 1;
        if let Some(sink) = record_sink.as_deref_mut() {
            write_frame(sink, &frame).map_err(|e| format!("--record write: {e}"))?;
        }
    }
    let agg_frame = read_frame(stream)
        .map_err(|e| format!("shard {shard} aggregate: {e}"))?
        .ok_or_else(|| format!("shard {shard}: stream ended before aggregate"))?;
    let aggregate =
        decode_aggregate(&agg_frame).map_err(|e| format!("shard {shard} aggregate: {e}"))?;
    let stats_frame = read_frame(stream)
        .map_err(|e| format!("shard {shard} stats: {e}"))?
        .ok_or_else(|| format!("shard {shard}: stream ended before stats"))?;
    let stats = decode_stats(&stats_frame).map_err(|e| format!("shard {shard} stats: {e}"))?;
    if stats.records != records {
        return Err(format!(
            "shard {shard}: worker reported {} records, coordinator saw {records}",
            stats.records
        ));
    }
    if refold.digest() != aggregate.digest() {
        return Err(format!(
            "shard {shard}: streamed records re-fold to digest {:016x} but the shard \
             aggregate says {:016x}",
            refold.digest(),
            aggregate.digest()
        ));
    }
    Ok(ShardResult { aggregate, stats })
}

/// Coordinator mode: spawn `workers` copies of this binary in shard
/// mode, drain their streams concurrently, verify and merge the shard
/// aggregates in shard order.
fn run_coordinator(args: &Args) -> Result<(FleetReport, f64, Vec<WorkerStats>), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let workers = args.workers.max(1).min(args.devices.max(1));
    let start = Instant::now();
    let mut children = Vec::new();
    for shard in 0..workers {
        let mut cmd = Command::new(&exe);
        cmd.arg("--devices")
            .arg(args.devices.to_string())
            .arg("--seed")
            .arg(args.seed.to_string())
            .arg("--sample")
            .arg(args.sample.to_string())
            .arg("--faults")
            .arg(args.faults.label())
            .arg("--shard")
            .arg(format!("{shard}/{workers}"))
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let child = cmd
            .spawn()
            .map_err(|e| format!("spawn worker {shard}: {e}"))?;
        children.push(child);
    }
    let record_file: Option<std::sync::Mutex<std::fs::File>> = match &args.record {
        Some(path) => Some(std::sync::Mutex::new(
            std::fs::File::create(path).map_err(|e| format!("--record {path}: {e}"))?,
        )),
        None => None,
    };
    // One reader per worker so a fast shard never backs up behind a
    // slow one's pipe buffer.
    let shard_results: Vec<Result<ShardResult, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = children
            .iter_mut()
            .enumerate()
            .map(|(shard, child)| {
                let mut stdout = child.stdout.take().expect("piped stdout");
                let record_file = record_file.as_ref();
                scope.spawn(move || match record_file {
                    Some(file) => {
                        // Frames interleave across workers; each record
                        // carries its device index, so order is
                        // recoverable.
                        let mut guard_adapter = LockedWriter(file);
                        read_worker(shard, &mut stdout, Some(&mut guard_adapter))
                    }
                    None => read_worker(shard, &mut stdout, None),
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reader thread panicked"))
            .collect()
    });
    let mut stats = Vec::new();
    let cfg = fleet_config(args, 1);
    let mut merged = FleetAggregate::new(&cfg);
    for (shard, result) in shard_results.into_iter().enumerate() {
        let shard_result = result?;
        let status = children[shard]
            .wait()
            .map_err(|e| format!("wait worker {shard}: {e}"))?;
        if !status.success() {
            return Err(format!("worker {shard} exited with {status}"));
        }
        // Shard aggregates merge in ascending shard order — device-index
        // order, since shards are contiguous ranges.
        merged.merge(shard_result.aggregate);
        stats.push(shard_result.stats);
    }
    Ok((merged.into_report(), start.elapsed().as_secs_f64(), stats))
}

/// `Write` adapter taking the record-file mutex per frame.
struct LockedWriter<'a>(&'a std::sync::Mutex<std::fs::File>);

impl Write for LockedWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("record file lock").write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.0.lock().expect("record file lock").flush()
    }
}

fn run_in_process(args: &Args, threads: usize) -> (FleetReport, f64) {
    let cfg = fleet_config(args, threads);
    let start = Instant::now();
    let report = cfg.run();
    (report, start.elapsed().as_secs_f64())
}

fn print_report(report: &FleetReport, parallelism: &str, wall_s: f64) {
    println!(
        "fleet: {} devices on {parallelism}: {:.1} simulated days, {} events in {:.2} s wall",
        report.device_count,
        report.simulated_s / 86_400.0,
        report.events,
        wall_s
    );
    println!(
        "  throughput: {:.0} simulated-seconds per wall-second ({:.1} device-days/s)",
        report.simulated_s / wall_s.max(1e-9),
        report.simulated_s / 86_400.0 / wall_s.max(1e-9)
    );
    for stats in report.policies.iter().filter(|s| s.devices > 0) {
        println!(
            "  {:<10} {:>3} devices  {:>9.0} det/day  {:>5.1}% brown-out  {:>5.1}% mean final SoC  {:>6.2}% uptime",
            stats.name,
            stats.devices,
            stats.detections_per_day,
            stats.brown_out_rate * 100.0,
            stats.mean_final_soc * 100.0,
            stats.mean_uptime * 100.0
        );
    }
    let rel = &report.reliability;
    println!(
        "  reliability: {:.2}% mean uptime, {} gated windows, {} skipped acquisitions, {} brownouts (mean recovery {:.1} s)",
        report.mean_uptime * 100.0,
        rel.degraded_windows,
        rel.skipped_acquisitions,
        rel.brownouts,
        rel.mean_recovery_s()
    );
    if rel.sync_episodes > 0 {
        println!(
            "  ble sync: {} episodes, {} ok ({} retried), {} dropped",
            rel.sync_episodes, rel.sync_ok, rel.sync_retried, rel.sync_dropped
        );
    }
    let episodes: Vec<String> = report
        .faults
        .iter_nonzero()
        .map(|(kind, count)| format!("{} {count}", kind.label()))
        .collect();
    if !episodes.is_empty() {
        println!("  fault episodes: {}", episodes.join(", "));
    }
    println!(
        "  max |conservation drift|: {:.1e} J",
        report.max_conservation_j
    );
    println!("  digest: {:016x}", report.digest);
}

fn human_bytes(bytes: u64) -> String {
    if bytes >= 1 << 30 {
        format!("{:.2} GiB", bytes as f64 / (1u64 << 30) as f64)
    } else {
        format!("{:.1} MiB", bytes as f64 / (1u64 << 20) as f64)
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fleet: {e}");
            std::process::exit(2);
        }
    };

    if let Some((shard, of)) = args.shard {
        // Worker mode: frames on stdout, nothing else.
        if let Err(e) = run_worker(&args, shard, of) {
            eprintln!("fleet worker {shard}/{of}: {e}");
            std::process::exit(1);
        }
        return;
    }

    let (report, wall_s, parallelism) = if args.workers > 0 {
        let (report, wall_s, worker_stats) = match run_coordinator(&args) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fleet: {e}");
                std::process::exit(1);
            }
        };
        let label = format!("{} worker process(es)", worker_stats.len());
        print_report(&report, &label, wall_s);
        let records: u64 = worker_stats.iter().map(|s| s.records).sum();
        println!(
            "  streamed: {records} records across {} workers (coordinator re-fold verified)",
            worker_stats.len()
        );
        for (shard, s) in worker_stats.iter().enumerate() {
            println!(
                "  worker {shard}: {} records, peak RSS {}, {:.2} s wall ({:.1} device-days/s)",
                s.records,
                human_bytes(s.peak_rss_bytes),
                s.wall_s,
                s.records as f64
                    * (report.simulated_s / 86_400.0 / report.device_count.max(1) as f64)
                    / s.wall_s.max(1e-9),
            );
        }
        println!(
            "  coordinator peak RSS {} (records streamed, never retained)",
            human_bytes(peak_rss_bytes())
        );
        (report, wall_s, label)
    } else {
        let (report, wall_s) = run_in_process(&args, args.threads);
        let label = format!("{} thread(s)", args.threads);
        print_report(&report, &label, wall_s);
        (report, wall_s, label)
    };

    if let Some(path) = &args.trace {
        let cfg = fleet_config(&args, 1);
        let json = cfg.trace_timeline(args.trace_devices);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("fleet: --trace {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "  trace: {} device process group(s) written to {path} ({} bytes)",
            args.trace_devices.min(args.devices),
            json.len()
        );
    }

    if args.check {
        let (serial, serial_wall) = run_in_process(&args, 1);
        println!(
            "check: serial rerun {:.2} s wall ({:.0} sim-s/wall-s, {:.2}x speedup over serial)",
            serial_wall,
            serial.simulated_s / serial_wall.max(1e-9),
            serial_wall / wall_s.max(1e-9)
        );
        if serial.digest == report.digest {
            println!(
                "check: OK — digest {:016x} identical on 1 thread and {parallelism}",
                report.digest
            );
        } else {
            eprintln!(
                "check: FAILED — digest {:016x} on {parallelism} vs {:016x} serial",
                report.digest, serial.digest
            );
            std::process::exit(1);
        }
    }
}
