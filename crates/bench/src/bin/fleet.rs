//! Parallel fleet runner CLI: sweep N simulated bracelets across
//! environments × wearers × policies and report aggregated
//! sustainability statistics.
//!
//! ```text
//! cargo run --release -p iw-bench --bin fleet -- --devices 64
//! cargo run --release -p iw-bench --bin fleet -- --devices 64 --check
//! ```
//!
//! `--check` runs the same sweep serially and on all requested threads
//! and exits non-zero unless the two aggregate digests match — the CI
//! determinism gate.

use std::time::Instant;

use iw_sim::FleetReport;

struct Args {
    devices: usize,
    threads: usize,
    seed: u64,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        devices: 64,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
        seed: iw_bench::SEED,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("bad {name}: {e}"))
        };
        match flag.as_str() {
            "--devices" => args.devices = value("--devices")? as usize,
            "--threads" => args.threads = (value("--threads")? as usize).max(1),
            "--seed" => args.seed = value("--seed")?,
            "--check" => args.check = true,
            other => {
                return Err(format!(
                    "unknown flag '{other}' (expected --devices N, --threads N, --seed N, --check)"
                ))
            }
        }
    }
    Ok(args)
}

fn run_once(devices: usize, threads: usize, seed: u64) -> (FleetReport, f64) {
    let cfg = iw_bench::d2_fleet_config(devices, threads, seed);
    let start = Instant::now();
    let report = cfg.run();
    (report, start.elapsed().as_secs_f64())
}

fn print_report(report: &FleetReport, threads: usize, wall_s: f64) {
    println!(
        "fleet: {} devices on {} thread(s): {:.1} simulated days, {} events in {:.2} s wall",
        report.devices.len(),
        threads,
        report.simulated_s / 86_400.0,
        report.events,
        wall_s
    );
    println!(
        "  throughput: {:.0} simulated-seconds per wall-second",
        report.simulated_s / wall_s.max(1e-9)
    );
    for stats in report.policies.iter().filter(|s| s.devices > 0) {
        println!(
            "  {:<10} {:>3} devices  {:>9.0} det/day  {:>5.1}% brown-out  {:>5.1}% mean final SoC",
            stats.name,
            stats.devices,
            stats.detections_per_day,
            stats.brown_out_rate * 100.0,
            stats.mean_final_soc * 100.0
        );
    }
    println!("  digest: {:016x}", report.digest);
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fleet: {e}");
            std::process::exit(2);
        }
    };

    let (report, wall_s) = run_once(args.devices, args.threads, args.seed);
    print_report(&report, args.threads, wall_s);

    if args.check {
        let (serial, serial_wall) = run_once(args.devices, 1, args.seed);
        println!(
            "check: serial rerun {:.2} s wall ({:.0} sim-s/wall-s, {:.2}x parallel speedup)",
            serial_wall,
            serial.simulated_s / serial_wall.max(1e-9),
            serial_wall / wall_s.max(1e-9)
        );
        if serial.digest == report.digest {
            println!(
                "check: OK — digest {:016x} identical on 1 and {} thread(s)",
                report.digest, args.threads
            );
        } else {
            eprintln!(
                "check: FAILED — digest {:016x} on {} thread(s) vs {:016x} serial",
                report.digest, args.threads, serial.digest
            );
            std::process::exit(1);
        }
    }
}
