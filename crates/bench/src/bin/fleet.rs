//! Parallel fleet runner CLI: sweep N simulated bracelets across
//! environments × wearers × policies and report aggregated
//! sustainability statistics.
//!
//! ```text
//! cargo run --release -p iw-bench --bin fleet -- --devices 64
//! cargo run --release -p iw-bench --bin fleet -- --devices 64 --check
//! cargo run --release -p iw-bench --bin fleet -- --devices 64 --faults harsh
//! ```
//!
//! `--check` runs the same sweep serially and on all requested threads
//! and exits non-zero unless the two aggregate digests match — the CI
//! determinism gate. `--faults clean|moderate|harsh` injects the named
//! fault profile (electrode faults, occlusion, BLE loss, gauge noise)
//! and reports the fleet reliability aggregates.

use std::time::Instant;

use iw_sim::{FaultProfile, FleetReport};

struct Args {
    devices: usize,
    threads: usize,
    seed: u64,
    faults: FaultProfile,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        devices: 64,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
        seed: iw_bench::SEED,
        faults: FaultProfile::Clean,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("bad {name}: {e}"))
        };
        match flag.as_str() {
            "--devices" => args.devices = value("--devices")? as usize,
            "--threads" => args.threads = (value("--threads")? as usize).max(1),
            "--seed" => args.seed = value("--seed")?,
            "--faults" => {
                let label = it.next().ok_or("--faults needs a value")?;
                args.faults = FaultProfile::parse(&label)
                    .ok_or_else(|| format!("bad --faults '{label}' (clean|moderate|harsh)"))?;
            }
            "--check" => args.check = true,
            other => {
                return Err(format!(
                    "unknown flag '{other}' (expected --devices N, --threads N, --seed N, \
                     --faults clean|moderate|harsh, --check)"
                ))
            }
        }
    }
    Ok(args)
}

fn run_once(devices: usize, threads: usize, seed: u64, faults: FaultProfile) -> (FleetReport, f64) {
    let cfg = iw_bench::d3_fleet_config(devices, threads, seed, faults);
    let start = Instant::now();
    let report = cfg.run();
    (report, start.elapsed().as_secs_f64())
}

fn print_report(report: &FleetReport, threads: usize, wall_s: f64) {
    println!(
        "fleet: {} devices on {} thread(s): {:.1} simulated days, {} events in {:.2} s wall",
        report.devices.len(),
        threads,
        report.simulated_s / 86_400.0,
        report.events,
        wall_s
    );
    println!(
        "  throughput: {:.0} simulated-seconds per wall-second",
        report.simulated_s / wall_s.max(1e-9)
    );
    for stats in report.policies.iter().filter(|s| s.devices > 0) {
        println!(
            "  {:<10} {:>3} devices  {:>9.0} det/day  {:>5.1}% brown-out  {:>5.1}% mean final SoC  {:>6.2}% uptime",
            stats.name,
            stats.devices,
            stats.detections_per_day,
            stats.brown_out_rate * 100.0,
            stats.mean_final_soc * 100.0,
            stats.mean_uptime * 100.0
        );
    }
    let rel = &report.reliability;
    println!(
        "  reliability: {:.2}% mean uptime, {} gated windows, {} skipped acquisitions, {} brownouts (mean recovery {:.1} s)",
        report.mean_uptime * 100.0,
        rel.degraded_windows,
        rel.skipped_acquisitions,
        rel.brownouts,
        rel.mean_recovery_s()
    );
    if rel.sync_episodes > 0 {
        println!(
            "  ble sync: {} episodes, {} ok ({} retried), {} dropped",
            rel.sync_episodes, rel.sync_ok, rel.sync_retried, rel.sync_dropped
        );
    }
    let episodes: Vec<String> = report
        .faults
        .iter_nonzero()
        .map(|(kind, count)| format!("{} {count}", kind.label()))
        .collect();
    if !episodes.is_empty() {
        println!("  fault episodes: {}", episodes.join(", "));
    }
    println!(
        "  max |conservation drift|: {:.1e} J",
        report.max_conservation_j
    );
    println!("  digest: {:016x}", report.digest);
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fleet: {e}");
            std::process::exit(2);
        }
    };

    let (report, wall_s) = run_once(args.devices, args.threads, args.seed, args.faults);
    print_report(&report, args.threads, wall_s);

    if args.check {
        let (serial, serial_wall) = run_once(args.devices, 1, args.seed, args.faults);
        println!(
            "check: serial rerun {:.2} s wall ({:.0} sim-s/wall-s, {:.2}x parallel speedup)",
            serial_wall,
            serial.simulated_s / serial_wall.max(1e-9),
            serial_wall / wall_s.max(1e-9)
        );
        if serial.digest == report.digest {
            println!(
                "check: OK — digest {:016x} identical on 1 and {} thread(s)",
                report.digest, args.threads
            );
        } else {
            eprintln!(
                "check: FAILED — digest {:016x} on {} thread(s) vs {:016x} serial",
                report.digest, args.threads, serial.digest
            );
            std::process::exit(1);
        }
    }
}
