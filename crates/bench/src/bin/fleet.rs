//! Streaming fleet service CLI: sweep N simulated bracelets across
//! environments × wearers × policies with bounded memory, either
//! in-process (threads) or as a coordinator/worker process pair.
//!
//! ```text
//! cargo run --release -p iw-bench --bin fleet -- --devices 64
//! cargo run --release -p iw-bench --bin fleet -- --devices 4096 --workers 2 --check
//! cargo run --release -p iw-bench --bin fleet -- --devices 64 --faults harsh
//! cargo run --release -p iw-bench --bin fleet -- --devices 64 --trace fleet.json
//! cargo run --release -p iw-bench --bin fleet -- --devices 4096 --workers 2 --metrics m.prom
//! ```
//!
//! `--workers N` re-spawns this binary N times in `--shard i/N` mode.
//! Each worker serially folds its contiguous device-index shard,
//! streaming every per-device record as a length-prefixed binary frame
//! on stdout (`iw_sim::record`) with periodic heartbeat frames
//! interleaved (progress, sim-days/s, RSS — advisory telemetry that
//! never feeds the aggregate), followed by the end marker, its shard
//! `FleetAggregate`, and a stats frame (peak RSS, wall seconds, record
//! count). The coordinator counts records as they arrive — re-folding
//! each one into an independent digest accumulator that must agree with
//! the worker's shipped aggregate — folds heartbeats into a live
//! progress board (per-worker rate, ETA, stragglers), then merges the
//! shard aggregates hierarchically in shard order. No
//! `Vec<DeviceResult>` exists anywhere: per-worker memory is
//! independent of `--devices`.
//!
//! `--check` reruns the sweep serially in-process and exits non-zero
//! unless the aggregate digests are bit-identical — the CI determinism
//! gate. `--faults clean|moderate|harsh` injects the named fault
//! profile. `--scenario none|epidemic` attaches the compiled epidemic
//! scenario (mobility contacts, weather fronts, gateway outages,
//! scripted infection); workers then interleave per-epoch contact
//! tallies as auxiliary epoch-beat frames (advisory — the epidemic fold
//! itself rides the merged aggregate edge set) and the coordinator
//! finalises the report with the epoch-barrier epidemic outcome. `--heartbeat-ms N` sets the worker heartbeat period (0
//! disables heartbeats). `--metrics PATH` exports the fleet metrics
//! snapshot — Prometheus text exposition, or JSON when the path ends in
//! `.json` — and prints the histogram summary table. `--trace PATH`
//! re-runs the first `--trace-devices K` devices with tracing enabled
//! and writes one Perfetto timeline with a process group per device
//! plus, after a worker run, a "fleet progress" counter group built
//! from the heartbeat series (off by default; never affects the
//! aggregate). `--record PATH` appends every streamed record frame to a
//! file (frames arrive interleaved across workers; each record carries
//! its device index).

use std::io::{BufWriter, Read, Write};
use std::process::{Command, Stdio};
use std::sync::Mutex;
use std::time::Instant;

use iw_metrics::Registry;
use iw_sim::record::{
    decode_aggregate, decode_stats, decode_stream_frame, encode_aggregate, encode_epoch,
    encode_heartbeat, encode_result, encode_stats, read_frame, write_end, write_frame, EpochBeat,
    Heartbeat, RecordError, StreamFrame, WorkerStats,
};
use iw_sim::{fleet_snapshot, DigestAccum, FleetAggregate, FleetConfig, FleetReport};
use iw_trace::{merged_chrome_trace, Recorder};

use iw_sim::FaultProfile;

struct Args {
    devices: usize,
    threads: usize,
    seed: u64,
    faults: FaultProfile,
    scenario: bool,
    check: bool,
    workers: usize,
    shard: Option<(usize, usize)>,
    sample: usize,
    trace: Option<String>,
    trace_devices: usize,
    record: Option<String>,
    heartbeat_ms: u64,
    metrics: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        devices: 64,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
        seed: iw_bench::SEED,
        faults: FaultProfile::Clean,
        scenario: false,
        check: false,
        workers: 0,
        shard: None,
        sample: 0,
        trace: None,
        trace_devices: 4,
        record: None,
        heartbeat_ms: 500,
        metrics: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("bad {name}: {e}"))
        };
        match flag.as_str() {
            "--devices" => args.devices = value("--devices")? as usize,
            "--threads" => args.threads = (value("--threads")? as usize).max(1),
            "--seed" => args.seed = value("--seed")?,
            "--workers" => args.workers = value("--workers")? as usize,
            "--sample" => args.sample = value("--sample")? as usize,
            "--trace-devices" => args.trace_devices = value("--trace-devices")? as usize,
            "--heartbeat-ms" => args.heartbeat_ms = value("--heartbeat-ms")?,
            "--shard" => {
                let spec = it.next().ok_or("--shard needs i/N")?;
                let (i, n) = spec.split_once('/').ok_or("--shard format is i/N")?;
                let i: usize = i.parse().map_err(|e| format!("bad shard index: {e}"))?;
                let n: usize = n.parse().map_err(|e| format!("bad shard count: {e}"))?;
                if n == 0 || i >= n {
                    return Err(format!("shard {i}/{n} out of range"));
                }
                args.shard = Some((i, n));
            }
            "--faults" => {
                let label = it.next().ok_or("--faults needs a value")?;
                args.faults = FaultProfile::parse(&label)
                    .ok_or_else(|| format!("bad --faults '{label}' (clean|moderate|harsh)"))?;
            }
            "--scenario" => {
                let label = it.next().ok_or("--scenario needs a value")?;
                args.scenario = match label.as_str() {
                    "none" => false,
                    "epidemic" => true,
                    other => return Err(format!("bad --scenario '{other}' (none|epidemic)")),
                };
            }
            "--trace" => args.trace = Some(it.next().ok_or("--trace needs a path")?),
            "--record" => args.record = Some(it.next().ok_or("--record needs a path")?),
            "--metrics" => args.metrics = Some(it.next().ok_or("--metrics needs a path")?),
            "--check" => args.check = true,
            other => {
                return Err(format!(
                    "unknown flag '{other}' (expected --devices N, --threads N, --seed N, \
                     --workers N, --shard i/N, --sample N, --faults clean|moderate|harsh, \
                     --scenario none|epidemic, --trace PATH, --trace-devices K, --record PATH, \
                     --metrics PATH, --heartbeat-ms N, --check)"
                ))
            }
        }
    }
    Ok(args)
}

/// Structured stderr log line: `fleet[role][phase] message`. Every
/// diagnostic from the coordinator and from any worker process goes
/// through here, so interleaved multi-process output stays
/// attributable to an emitting role and pipeline phase.
fn flog(role: &str, phase: &str, msg: &str) {
    eprintln!("fleet[{role}][{phase}] {msg}");
}

fn fleet_config(args: &Args, threads: usize) -> FleetConfig {
    // The scenario compiles deterministically from (devices, seed), so
    // every worker process recompiles the identical artifact — nothing
    // scenario-shaped crosses the pipe except edges and epoch beats.
    let mut cfg = if args.scenario {
        iw_bench::d4_fleet_config(args.devices, threads, args.seed, args.faults)
    } else {
        iw_bench::d3_fleet_config(args.devices, threads, args.seed, args.faults)
    };
    // A malformed policy (e.g. EnergyAware with min_soc >= 1) silently
    // degenerates into a device that never detects — surface it as a
    // configuration error instead of a mysteriously idle sweep.
    for (name, spec) in &cfg.policies {
        if let Err(e) = spec.validate() {
            flog(
                "coordinator",
                "config",
                &format!("invalid policy '{name}': {e}"),
            );
            std::process::exit(2);
        }
    }
    cfg.sample_devices = args.sample;
    cfg
}

/// Peak resident-set size of this process in bytes (Linux `VmHWM`);
/// `None` where `/proc` is unavailable or unparsable — callers render
/// "n/a" rather than a bogus 0.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let rest = status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))?;
    let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
    Some(kb * 1024)
}

fn human_rss(bytes: Option<u64>) -> String {
    bytes.map_or_else(|| "n/a".to_string(), human_bytes)
}

/// Worker mode: serially fold the shard, streaming each record as it is
/// produced, with heartbeat frames interleaved every `--heartbeat-ms`.
/// Protocol: (record | heartbeat) frames… · end marker · aggregate
/// frame · stats frame.
fn run_worker(args: &Args, shard: usize, of: usize) -> Result<(), RecordError> {
    let cfg = fleet_config(args, 1);
    let range = cfg.shard_range(shard, of);
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    let start = Instant::now();
    let mut records = 0u64;
    let mut stream_err: Option<RecordError> = None;
    let mut beat = Heartbeat {
        shard: shard as u32,
        of: of as u32,
        elapsed_s: 0.0,
        devices_done: 0,
        devices_total: range.len() as u64,
        sim_days: 0.0,
        events: 0,
        fault_episodes: 0,
        brownouts: 0,
        rss_bytes: None,
    };
    let mut last_beat = Instant::now();
    // Per-epoch observed-contact tallies for this shard, emitted as
    // auxiliary epoch-beat frames after the record stream.
    let mut epoch_contacts: std::collections::BTreeMap<u32, u64> =
        std::collections::BTreeMap::new();
    let agg = cfg.run_chunk_with(range, |r| {
        if stream_err.is_some() {
            return;
        }
        for edge in &r.contact_edges {
            *epoch_contacts.entry(edge.epoch).or_insert(0) += 1;
        }
        records += 1;
        beat.devices_done += 1;
        beat.sim_days += r.days;
        beat.events += r.events;
        beat.fault_episodes += r.faults.total();
        beat.brownouts += u64::from(r.browned_out);
        if let Err(e) = write_frame(&mut out, &encode_result(r)) {
            stream_err = Some(e);
            return;
        }
        if args.heartbeat_ms > 0 && last_beat.elapsed().as_millis() as u64 >= args.heartbeat_ms {
            last_beat = Instant::now();
            beat.elapsed_s = start.elapsed().as_secs_f64();
            beat.rss_bytes = peak_rss_bytes();
            // Flush so the coordinator sees the beat now, not whenever
            // the BufWriter next drains.
            if let Err(e) = write_frame(&mut out, &encode_heartbeat(&beat)) {
                stream_err = Some(e);
            } else if let Err(e) = out.flush() {
                stream_err = Some(e.into());
            }
        }
    });
    if let Some(e) = stream_err {
        return Err(e);
    }
    if args.heartbeat_ms > 0 {
        // Final beat: the progress board and any trace counter series
        // end exactly at shard completion.
        beat.elapsed_s = start.elapsed().as_secs_f64();
        beat.rss_bytes = peak_rss_bytes();
        write_frame(&mut out, &encode_heartbeat(&beat))?;
    }
    for (epoch, contacts) in &epoch_contacts {
        let eb = EpochBeat {
            shard: shard as u32,
            epoch: *epoch,
            contacts: *contacts,
            edges: *contacts,
        };
        write_frame(&mut out, &encode_epoch(&eb))?;
    }
    write_end(&mut out)?;
    write_frame(&mut out, &encode_aggregate(&agg))?;
    let stats = WorkerStats {
        peak_rss_bytes: peak_rss_bytes(),
        wall_s: start.elapsed().as_secs_f64(),
        records,
    };
    write_frame(&mut out, &encode_stats(&stats))?;
    out.flush()?;
    Ok(())
}

/// One worker's live progress, folded from its heartbeat stream.
#[derive(Clone, Default)]
struct WorkerProgress {
    done: u64,
    total: u64,
    /// Devices per second by the worker's own clock.
    rate: f64,
    /// `(elapsed µs, devices done)` heartbeat history — the Perfetto
    /// counter-series bridge consumes this.
    series: Vec<(u64, f64)>,
}

/// Coordinator-side live progress: one slot per worker, re-rendered (at
/// most once a second) whenever a heartbeat lands.
struct ProgressBoard {
    started: Instant,
    devices_total: u64,
    workers: Vec<WorkerProgress>,
    last_render: Option<Instant>,
    /// Suppress live rendering (still folds heartbeat history).
    quiet: bool,
    /// Cross-shard per-epoch contact tallies folded from epoch beats
    /// (advisory narration; the epidemic fold uses the aggregates).
    epoch_contacts: std::collections::BTreeMap<u32, u64>,
}

impl ProgressBoard {
    fn new(workers: usize, devices_total: u64, quiet: bool) -> ProgressBoard {
        ProgressBoard {
            started: Instant::now(),
            devices_total,
            workers: vec![WorkerProgress::default(); workers],
            last_render: None,
            quiet,
            epoch_contacts: std::collections::BTreeMap::new(),
        }
    }

    fn epoch_beat(&mut self, eb: &EpochBeat) {
        *self.epoch_contacts.entry(eb.epoch).or_insert(0) += eb.contacts;
    }

    fn beat(&mut self, hb: &Heartbeat) {
        let Some(w) = self.workers.get_mut(hb.shard as usize) else {
            return;
        };
        w.done = hb.devices_done;
        w.total = hb.devices_total;
        w.rate = if hb.elapsed_s > 0.0 {
            hb.devices_done as f64 / hb.elapsed_s
        } else {
            0.0
        };
        w.series
            .push(((hb.elapsed_s * 1e6) as u64, hb.devices_done as f64));
        self.maybe_render();
    }

    fn maybe_render(&mut self) {
        if self.quiet {
            return;
        }
        let now = Instant::now();
        if self
            .last_render
            .is_some_and(|t| now.duration_since(t).as_secs_f64() < 1.0)
        {
            return;
        }
        self.last_render = Some(now);
        let done: u64 = self.workers.iter().map(|w| w.done).sum();
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = done as f64 / elapsed.max(1e-9);
        let pct = 100.0 * done as f64 / self.devices_total.max(1) as f64;
        let remaining = self.devices_total.saturating_sub(done);
        let eta = if rate > 0.0 {
            format!("{:.0} s", remaining as f64 / rate)
        } else {
            "?".to_string()
        };
        let mut line = format!(
            "{done}/{} devices ({pct:.0}%) · {rate:.1} dev/s · ETA {eta}",
            self.devices_total
        );
        let stragglers = self.stragglers();
        if !stragglers.is_empty() {
            let list: Vec<String> = stragglers.iter().map(|s| format!("worker {s}")).collect();
            line.push_str(&format!(" · stragglers: {}", list.join(", ")));
        }
        flog("coordinator", "progress", &line);
    }

    /// Workers whose own device rate has fallen more than 2× behind the
    /// median of all reporting workers (and are not yet done).
    fn stragglers(&self) -> Vec<usize> {
        let mut rates: Vec<f64> = self
            .workers
            .iter()
            .filter(|w| w.done > 0)
            .map(|w| w.rate)
            .collect();
        if rates.len() < 2 {
            return Vec::new();
        }
        rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        let median = rates[rates.len() / 2];
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.done > 0 && w.done < w.total && w.rate * 2.0 < median)
            .map(|(shard, _)| shard)
            .collect()
    }
}

/// One worker's decoded handoff on the coordinator side.
struct ShardResult {
    aggregate: FleetAggregate,
    stats: WorkerStats,
}

/// Drains one worker's stdout: counts record frames (re-folding each
/// decoded record into an independent digest accumulator), folds
/// heartbeat frames into the shared progress board, skips unknown
/// auxiliary frames (forward compatibility with newer workers), then
/// decodes the aggregate and stats frames. The re-folded digest must
/// match the worker's shipped aggregate — a per-shard integrity check
/// on the wire format itself.
fn read_worker<R: Read>(
    shard: usize,
    stream: &mut R,
    mut record_sink: Option<&mut dyn Write>,
    board: &Mutex<ProgressBoard>,
) -> Result<ShardResult, String> {
    let mut refold = DigestAccum::new();
    let mut records = 0u64;
    while let Some(frame) = read_frame(stream).map_err(|e| format!("shard {shard}: {e}"))? {
        match decode_stream_frame(&frame)
            .map_err(|e| format!("shard {shard} frame {records}: {e}"))?
        {
            StreamFrame::Result(result) => {
                refold.fold(result.digest());
                records += 1;
                if let Some(sink) = record_sink.as_deref_mut() {
                    write_frame(sink, &frame).map_err(|e| format!("--record write: {e}"))?;
                }
            }
            StreamFrame::Heartbeat(hb) => {
                board.lock().expect("progress board lock").beat(&hb);
            }
            StreamFrame::Epoch(eb) => {
                board.lock().expect("progress board lock").epoch_beat(&eb);
            }
            StreamFrame::Skipped(_) => {}
        }
    }
    let agg_frame = read_frame(stream)
        .map_err(|e| format!("shard {shard} aggregate: {e}"))?
        .ok_or_else(|| format!("shard {shard}: stream ended before aggregate"))?;
    let aggregate =
        decode_aggregate(&agg_frame).map_err(|e| format!("shard {shard} aggregate: {e}"))?;
    let stats_frame = read_frame(stream)
        .map_err(|e| format!("shard {shard} stats: {e}"))?
        .ok_or_else(|| format!("shard {shard}: stream ended before stats"))?;
    let stats = decode_stats(&stats_frame).map_err(|e| format!("shard {shard} stats: {e}"))?;
    if stats.records != records {
        return Err(format!(
            "shard {shard}: worker reported {} records, coordinator saw {records}",
            stats.records
        ));
    }
    if refold.digest() != aggregate.digest() {
        return Err(format!(
            "shard {shard}: streamed records re-fold to digest {:016x} but the shard \
             aggregate says {:016x}",
            refold.digest(),
            aggregate.digest()
        ));
    }
    Ok(ShardResult { aggregate, stats })
}

/// Everything the coordinator hands back to `main`.
struct CoordinatorRun {
    report: FleetReport,
    wall_s: f64,
    stats: Vec<WorkerStats>,
    progress: Vec<WorkerProgress>,
    /// Per-epoch contact tallies folded from the workers' epoch beats.
    epoch_contacts: Vec<(u32, u64)>,
}

/// Coordinator mode: spawn `workers` copies of this binary in shard
/// mode, drain their streams concurrently (rendering live progress from
/// the interleaved heartbeats), verify and merge the shard aggregates
/// in shard order.
fn run_coordinator(args: &Args) -> Result<CoordinatorRun, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let workers = args.workers.max(1).min(args.devices.max(1));
    let start = Instant::now();
    let mut children = Vec::new();
    for shard in 0..workers {
        let mut cmd = Command::new(&exe);
        cmd.arg("--devices")
            .arg(args.devices.to_string())
            .arg("--seed")
            .arg(args.seed.to_string())
            .arg("--sample")
            .arg(args.sample.to_string())
            .arg("--faults")
            .arg(args.faults.label())
            .arg("--scenario")
            .arg(if args.scenario { "epidemic" } else { "none" })
            .arg("--heartbeat-ms")
            .arg(args.heartbeat_ms.to_string())
            .arg("--shard")
            .arg(format!("{shard}/{workers}"))
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let child = cmd
            .spawn()
            .map_err(|e| format!("spawn worker {shard}: {e}"))?;
        children.push(child);
    }
    let record_file: Option<Mutex<std::fs::File>> = match &args.record {
        Some(path) => Some(Mutex::new(
            std::fs::File::create(path).map_err(|e| format!("--record {path}: {e}"))?,
        )),
        None => None,
    };
    let board = Mutex::new(ProgressBoard::new(
        workers,
        args.devices as u64,
        args.heartbeat_ms == 0,
    ));
    // One reader per worker so a fast shard never backs up behind a
    // slow one's pipe buffer.
    let shard_results: Vec<Result<ShardResult, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = children
            .iter_mut()
            .enumerate()
            .map(|(shard, child)| {
                let mut stdout = child.stdout.take().expect("piped stdout");
                let record_file = record_file.as_ref();
                let board = &board;
                scope.spawn(move || match record_file {
                    Some(file) => {
                        // Frames interleave across workers; each record
                        // carries its device index, so order is
                        // recoverable.
                        let mut guard_adapter = LockedWriter(file);
                        read_worker(shard, &mut stdout, Some(&mut guard_adapter), board)
                    }
                    None => read_worker(shard, &mut stdout, None, board),
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reader thread panicked"))
            .collect()
    });
    let mut stats = Vec::new();
    let cfg = fleet_config(args, 1);
    let mut merged = FleetAggregate::new(&cfg);
    for (shard, result) in shard_results.into_iter().enumerate() {
        let shard_result = result?;
        let status = children[shard]
            .wait()
            .map_err(|e| format!("wait worker {shard}: {e}"))?;
        if !status.success() {
            return Err(format!("worker {shard} exited with {status}"));
        }
        // Shard aggregates merge in ascending shard order — device-index
        // order, since shards are contiguous ranges.
        merged.merge(shard_result.aggregate);
        stats.push(shard_result.stats);
    }
    let board = board.into_inner().expect("progress board lock");
    Ok(CoordinatorRun {
        // Scenario runs finalise through the compiled scenario so the
        // epoch-barrier epidemic fold lands in the report (and its
        // digest), exactly as the in-process runner does.
        report: merged.into_report_with(cfg.scenario.as_deref()),
        wall_s: start.elapsed().as_secs_f64(),
        stats,
        progress: board.workers,
        epoch_contacts: board.epoch_contacts.into_iter().collect(),
    })
}

/// `Write` adapter taking the record-file mutex per frame.
struct LockedWriter<'a>(&'a Mutex<std::fs::File>);

impl Write for LockedWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("record file lock").write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.0.lock().expect("record file lock").flush()
    }
}

fn run_in_process(args: &Args, threads: usize) -> (FleetReport, f64) {
    let cfg = fleet_config(args, threads);
    let start = Instant::now();
    let report = cfg.run();
    (report, start.elapsed().as_secs_f64())
}

fn print_report(report: &FleetReport, parallelism: &str, wall_s: f64) {
    println!(
        "fleet: {} devices on {parallelism}: {:.1} simulated days, {} events in {:.2} s wall",
        report.device_count,
        report.simulated_s / 86_400.0,
        report.events,
        wall_s
    );
    println!(
        "  throughput: {:.0} simulated-seconds per wall-second ({:.1} device-days/s)",
        report.simulated_s / wall_s.max(1e-9),
        report.simulated_s / 86_400.0 / wall_s.max(1e-9)
    );
    for stats in report.policies.iter().filter(|s| s.devices > 0) {
        println!(
            "  {:<10} {:>3} devices  {:>9.0} det/day  {:>5.1}% brown-out  {:>5.1}% mean final SoC  {:>6.2}% uptime",
            stats.name,
            stats.devices,
            stats.detections_per_day,
            stats.brown_out_rate * 100.0,
            stats.mean_final_soc * 100.0,
            stats.mean_uptime * 100.0
        );
    }
    let rel = &report.reliability;
    println!(
        "  reliability: {:.2}% mean uptime, {} gated windows, {} skipped acquisitions, {} brownouts (mean recovery {:.1} s)",
        report.mean_uptime * 100.0,
        rel.degraded_windows,
        rel.skipped_acquisitions,
        rel.brownouts,
        rel.mean_recovery_s()
    );
    if rel.sync_episodes > 0 {
        println!(
            "  ble sync: {} episodes, {} ok ({} retried), {} dropped",
            rel.sync_episodes, rel.sync_ok, rel.sync_retried, rel.sync_dropped
        );
    }
    let episodes: Vec<String> = report
        .faults
        .iter_nonzero()
        .map(|(kind, count)| format!("{} {count}", kind.label()))
        .collect();
    if !episodes.is_empty() {
        println!("  fault episodes: {}", episodes.join(", "));
    }
    if let Some(scn) = &report.scenario {
        println!(
            "  contacts: {} observed, {} missed, {} uplinked, {} edges, {:.4} J scan energy",
            scn.contacts_observed,
            scn.contacts_missed,
            scn.contacts_uplinked,
            scn.edge_count,
            scn.scan_energy_j
        );
        if let Some(epi) = &scn.epidemic {
            println!(
                "  epidemic: {} seeded -> {} infected ({:.1}% attack rate)",
                epi.seeded,
                epi.infected,
                epi.attack_rate(report.device_count as u64) * 100.0
            );
        }
    }
    println!(
        "  max |conservation drift|: {:.1e} J",
        report.max_conservation_j
    );
    println!("  digest: {:016x}", report.digest);
}

fn human_bytes(bytes: u64) -> String {
    if bytes >= 1 << 30 {
        format!("{:.2} GiB", bytes as f64 / (1u64 << 30) as f64)
    } else {
        format!("{:.1} MiB", bytes as f64 / (1u64 << 20) as f64)
    }
}

/// Exports the fleet metrics snapshot plus a coordinator runtime
/// section: Prometheus text exposition, or JSON when `path` ends in
/// `.json`. Prints the histogram summary table to stdout.
fn write_metrics(
    path: &str,
    report: &FleetReport,
    wall_s: f64,
    worker_stats: &[WorkerStats],
) -> Result<(), String> {
    let reg = Registry::new();
    reg.gauge("fleet_wall_seconds", &[]).set(wall_s);
    reg.gauge("fleet_device_days_per_wall_second", &[])
        .set(report.simulated_s / 86_400.0 / wall_s.max(1e-9));
    for (shard, s) in worker_stats.iter().enumerate() {
        let shard = shard.to_string();
        let labels = [("shard", shard.as_str())];
        reg.counter("fleet_worker_records", &labels).add(s.records);
        reg.gauge("fleet_worker_wall_seconds", &labels)
            .set(s.wall_s);
        if let Some(rss) = s.peak_rss_bytes {
            reg.gauge("fleet_worker_peak_rss_bytes", &labels)
                .set(rss as f64);
        }
    }
    let mut snap = fleet_snapshot(report);
    snap.extend(reg.snapshot());
    let body = if path.ends_with(".json") {
        snap.to_json()
    } else {
        snap.to_prometheus()
    };
    std::fs::write(path, &body).map_err(|e| format!("--metrics {path}: {e}"))?;
    println!(
        "  metrics: {} samples exported to {path} ({} bytes)",
        snap.samples.len(),
        body.len()
    );
    print!("{}", snap.render_table());
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            flog("coordinator", "args", &e);
            std::process::exit(2);
        }
    };

    if let Some((shard, of)) = args.shard {
        // Worker mode: frames on stdout, nothing else.
        if let Err(e) = run_worker(&args, shard, of) {
            flog(&format!("worker {shard}/{of}"), "stream", &e.to_string());
            std::process::exit(1);
        }
        return;
    }

    let mut worker_progress: Vec<WorkerProgress> = Vec::new();
    let (report, wall_s, parallelism) = if args.workers > 0 {
        let run = match run_coordinator(&args) {
            Ok(r) => r,
            Err(e) => {
                flog("coordinator", "run", &e);
                std::process::exit(1);
            }
        };
        let CoordinatorRun {
            report,
            wall_s,
            stats: worker_stats,
            progress,
            epoch_contacts,
        } = run;
        worker_progress = progress;
        let label = format!("{} worker process(es)", worker_stats.len());
        print_report(&report, &label, wall_s);
        let records: u64 = worker_stats.iter().map(|s| s.records).sum();
        println!(
            "  streamed: {records} records across {} workers (coordinator re-fold verified)",
            worker_stats.len()
        );
        if !epoch_contacts.is_empty() {
            let total: u64 = epoch_contacts.iter().map(|&(_, c)| c).sum();
            let &(peak_epoch, peak) = epoch_contacts
                .iter()
                .max_by_key(|&&(_, c)| c)
                .expect("non-empty epoch beats");
            println!(
                "  epoch beats: {total} contacts across {} epochs (peak {peak} in epoch {peak_epoch})",
                epoch_contacts.len()
            );
        }
        for (shard, s) in worker_stats.iter().enumerate() {
            println!(
                "  worker {shard}: {} records, peak RSS {}, {:.2} s wall ({:.1} device-days/s)",
                s.records,
                human_rss(s.peak_rss_bytes),
                s.wall_s,
                s.records as f64
                    * (report.simulated_s / 86_400.0 / report.device_count.max(1) as f64)
                    / s.wall_s.max(1e-9),
            );
        }
        println!(
            "  coordinator peak RSS {} (records streamed, never retained)",
            human_rss(peak_rss_bytes())
        );
        if let Some(path) = &args.metrics {
            if let Err(e) = write_metrics(path, &report, wall_s, &worker_stats) {
                flog("coordinator", "metrics", &e);
                std::process::exit(1);
            }
        }
        (report, wall_s, label)
    } else {
        let (report, wall_s) = run_in_process(&args, args.threads);
        let label = format!("{} thread(s)", args.threads);
        print_report(&report, &label, wall_s);
        if let Some(path) = &args.metrics {
            if let Err(e) = write_metrics(path, &report, wall_s, &[]) {
                flog("coordinator", "metrics", &e);
                std::process::exit(1);
            }
        }
        (report, wall_s, label)
    };

    if let Some(path) = &args.trace {
        let cfg = fleet_config(&args, 1);
        let k = args.trace_devices.min(args.devices);
        let mut groups: Vec<(String, Recorder)> = (0..k)
            .map(|index| {
                let mut rec = Recorder::new();
                let r = cfg.run_device_traced(index, &mut rec);
                let name = format!("device {index} · {}/{}/{}", r.env, r.subject, r.policy);
                (name, rec)
            })
            .collect();
        // Heartbeat history from a worker run becomes a "fleet
        // progress" process group: one devices-done counter track per
        // worker, timestamped in worker wall-clock µs.
        if worker_progress.iter().any(|w| !w.series.is_empty()) {
            let mut rec = Recorder::new();
            for (shard, w) in worker_progress.iter().enumerate() {
                rec.counter_series(&format!("worker {shard}"), "devices done", 1.0, &w.series);
            }
            groups.push(("fleet progress".to_string(), rec));
        }
        let json = merged_chrome_trace(&mut groups);
        if let Err(e) = std::fs::write(path, &json) {
            flog("coordinator", "trace", &format!("--trace {path}: {e}"));
            std::process::exit(1);
        }
        println!(
            "  trace: {} process group(s) written to {path} ({} bytes)",
            groups.len(),
            json.len()
        );
    }

    if args.check {
        let (serial, serial_wall) = run_in_process(&args, 1);
        println!(
            "check: serial rerun {:.2} s wall ({:.0} sim-s/wall-s, {:.2}x speedup over serial)",
            serial_wall,
            serial.simulated_s / serial_wall.max(1e-9),
            serial_wall / wall_s.max(1e-9)
        );
        if serial.digest == report.digest {
            println!(
                "check: OK — digest {:016x} identical on 1 thread and {parallelism}",
                report.digest
            );
        } else {
            flog(
                "coordinator",
                "check",
                &format!(
                    "FAILED — digest {:016x} on {parallelism} vs {:016x} serial",
                    report.digest, serial.digest
                ),
            );
            std::process::exit(1);
        }
    }
}
