//! Records one registry target with the tracing layer attached and
//! writes both observability artifacts:
//!
//! * `<stem>.trace.json` — Chrome trace-event timeline; open at
//!   <https://ui.perfetto.dev> (one track per cluster core plus derived
//!   per-layer `code` tracks, SoC energy counters and the harvest track).
//! * `<stem>.folded` — folded-stack hotspot report of the *simulated*
//!   program; feed to `inferno-flamegraph` / `flamegraph.pl`.
//!
//! ```text
//! cargo run --release -p iw-bench --bin trace -- neta cl8
//! cargo run --release -p iw-bench --bin trace -- netb m4 --out /tmp/traces
//! ```
//!
//! `--check` additionally validates the artifacts (well-formed JSON, one
//! track per cluster core, non-empty hotspot report) and exits non-zero
//! on failure — the CI smoke mode.

use std::path::PathBuf;
use std::process::exit;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: trace <neta|netb> <target-id> [--check] [--out DIR]");
    exit(2);
}

fn main() {
    let mut positional = Vec::new();
    let mut check = false;
    let mut out_dir = PathBuf::from("target/trace");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => fail("--out needs a directory"),
            },
            _ => positional.push(arg),
        }
    }
    let [net, target] = positional.as_slice() else {
        fail("expected exactly two arguments: <neta|netb> <target-id>");
    };

    let art = match iw_bench::trace_target(net, target) {
        Ok(art) => art,
        Err(e) => fail(&e),
    };

    if check {
        if let Err(e) = iw_trace::validate_json(&art.chrome_json) {
            fail(&format!("trace JSON is malformed: {e}"));
        }
        if art.run.cluster.is_some() {
            let cores = art
                .run
                .cluster
                .as_ref()
                .map_or(0, |c| c.per_core_cycles.len());
            for core in 0..cores {
                let name = format!("\"cluster/core{core}\"");
                if !art.chrome_json.contains(&name) {
                    fail(&format!("trace JSON is missing the {name} track"));
                }
            }
        }
        if art.folded.trim().is_empty() {
            fail("folded-stack report is empty");
        }
        println!("check ok: valid JSON, all per-core tracks present, hotspots non-empty");
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        fail(&format!("cannot create {}: {e}", out_dir.display()));
    }
    let json_path = out_dir.join(format!("{}.trace.json", art.stem));
    let folded_path = out_dir.join(format!("{}.folded", art.stem));
    if let Err(e) = std::fs::write(&json_path, &art.chrome_json) {
        fail(&format!("cannot write {}: {e}", json_path.display()));
    }
    if let Err(e) = std::fs::write(&folded_path, &art.folded) {
        fail(&format!("cannot write {}: {e}", folded_path.display()));
    }

    println!(
        "{}: {} cycles, {} instructions",
        art.stem, art.run.cycles, art.run.instructions
    );
    println!(
        "  timeline : {} (open in https://ui.perfetto.dev)",
        json_path.display()
    );
    println!(
        "  hotspots : {} (inferno-flamegraph {} > flame.svg)",
        folded_path.display(),
        folded_path.display()
    );
}
