//! Deterministic Pareto policy search CLI: evaluate every candidate
//! [`iw_sim::PolicySpec`] as its own fleet run on the harsh 40 J stress
//! cell, print the D5 table, and write the machine-readable results to
//! `BENCH_policy.json`.
//!
//! ```text
//! cargo run --release -p iw-bench --bin policy-search
//! cargo run --release -p iw-bench --bin policy-search -- --devices 256 --threads 8
//! cargo run --release -p iw-bench --bin policy-search -- --devices 64 --candidates 6 --check
//! ```
//!
//! `--candidates N` truncates the candidate list to its first N entries
//! (the three frozen baselines always lead, so tiny grids keep their
//! reference policies). `--check` is the CI gate: it re-runs the whole
//! search on a different thread count and exits non-zero unless every
//! per-candidate digest (and the combined search digest) is
//! bit-identical, and unless at least one searched adaptive policy
//! dominates the `aware-24` baseline (uptime no worse, strictly more
//! detections per day).

use iw_bench::{d5_candidates, d5_policy_search, d5_search_digest, PolicyOutcome};

struct Args {
    devices: usize,
    threads: usize,
    seed: u64,
    candidates: usize,
    out: Option<String>,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        devices: 96,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
        seed: iw_bench::SEED,
        candidates: 0,
        out: Some("BENCH_policy.json".into()),
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("bad {name}: {e}"))
        };
        match flag.as_str() {
            "--devices" => args.devices = (value("--devices")? as usize).max(1),
            "--threads" => args.threads = (value("--threads")? as usize).max(1),
            "--seed" => args.seed = value("--seed")?,
            "--candidates" => args.candidates = value("--candidates")? as usize,
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?),
            "--no-out" => args.out = None,
            "--check" => args.check = true,
            other => {
                return Err(format!(
                    "unknown flag '{other}' (expected --devices N, --threads N, --seed N, \
                     --candidates N, --out PATH, --no-out, --check)"
                ))
            }
        }
    }
    if args.candidates > 0 && args.candidates < 3 {
        return Err("--candidates must be >= 3 (the baselines always run)".into());
    }
    Ok(args)
}

/// Structured stderr log line, mirroring the `fleet` binary's format so
/// interleaved CI output stays attributable.
fn plog(phase: &str, msg: &str) {
    eprintln!("policy-search[{phase}] {msg}");
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".into()
    }
}

/// Renders the outcome set as a stable, dependency-free JSON document.
/// Candidate names are machine-generated (`[a-z0-9-]`), so no string
/// escaping is needed beyond trusting our own generator.
fn render_json(args: &Args, outcomes: &[PolicyOutcome]) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"bench\": \"policy-search\",\n");
    j.push_str("  \"cell\": \"d3-harsh-40J\",\n");
    j.push_str(&format!("  \"seed\": {},\n", args.seed));
    j.push_str(&format!("  \"devices\": {},\n", args.devices));
    j.push_str(&format!("  \"threads\": {},\n", args.threads));
    j.push_str("  \"candidates\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"adaptive\": {}, \"uptime\": {}, \
             \"detections_per_day\": {}, \"energy_per_detection_j\": {}, \
             \"target_m4\": {}, \"target_ibex\": {}, \"target_cluster\": {}, \
             \"backoff_skips\": {}, \"sync_stretches\": {}, \
             \"digest\": \"{:016x}\", \"pareto\": {}}}{}\n",
            o.name,
            o.adaptive,
            json_f64(o.uptime),
            json_f64(o.detections_per_day),
            json_f64(o.energy_per_detection_j),
            o.target_m4,
            o.target_ibex,
            o.target_cluster,
            o.backoff_skips,
            o.sync_stretches,
            o.digest,
            o.pareto,
            if i + 1 < outcomes.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    let front: Vec<String> = outcomes
        .iter()
        .filter(|o| o.pareto)
        .map(|o| format!("\"{}\"", o.name))
        .collect();
    j.push_str(&format!("  \"pareto_front\": [{}],\n", front.join(", ")));
    j.push_str(&format!(
        "  \"search_digest\": \"{:016x}\"\n",
        d5_search_digest(outcomes)
    ));
    j.push_str("}\n");
    j
}

/// The acceptance criterion: some searched adaptive policy must Pareto-
/// dominate the `aware-24` baseline on the visible axes — uptime no
/// worse, strictly more detections per day.
fn dominator_over_aware(outcomes: &[PolicyOutcome]) -> Option<&PolicyOutcome> {
    let aware = outcomes.iter().find(|o| o.name == "aware-24")?;
    outcomes.iter().find(|o| {
        o.adaptive && o.uptime >= aware.uptime && o.detections_per_day > aware.detections_per_day
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            plog("args", &e);
            std::process::exit(2);
        }
    };

    let mut candidates = d5_candidates(args.seed);
    if args.candidates > 0 {
        candidates.truncate(args.candidates);
    }
    // Reject malformed specs up front with the offending constraint —
    // a degenerate candidate would otherwise just sit idle in the table.
    for candidate in &candidates {
        if let Err(e) = candidate.spec.validate() {
            plog(
                "validate",
                &format!("invalid candidate '{}': {e}", candidate.name),
            );
            std::process::exit(2);
        }
    }

    plog(
        "run",
        &format!(
            "{} candidates x {} devices on {} threads (seed {})",
            candidates.len(),
            args.devices,
            args.threads,
            args.seed
        ),
    );
    let outcomes = d5_policy_search(args.devices, args.threads, args.seed, &candidates);
    print!(
        "{}",
        iw_bench::render_d5_table(args.devices, args.threads, &outcomes)
    );

    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, render_json(&args, &outcomes)) {
            plog("out", &format!("cannot write {path}: {e}"));
            std::process::exit(1);
        }
        plog("out", &format!("wrote {path}"));
    }

    if args.check {
        // Determinism gate: the identical search on a different thread
        // topology must land on bit-identical per-candidate digests.
        let other_threads = if args.threads == 1 { 2 } else { 1 };
        let rerun = d5_policy_search(args.devices, other_threads, args.seed, &candidates);
        for (a, b) in outcomes.iter().zip(&rerun) {
            if a.digest != b.digest {
                plog(
                    "check",
                    &format!(
                        "digest mismatch for '{}': {:016x} ({} threads) vs {:016x} ({} threads)",
                        a.name, a.digest, args.threads, b.digest, other_threads
                    ),
                );
                std::process::exit(1);
            }
        }
        if d5_search_digest(&outcomes) != d5_search_digest(&rerun) {
            plog("check", "combined search digest mismatch across topologies");
            std::process::exit(1);
        }
        match dominator_over_aware(&outcomes) {
            Some(winner) => plog(
                "check",
                &format!(
                    "'{}' dominates aware-24 ({:.2}% uptime, {:.0} det/day)",
                    winner.name,
                    winner.uptime * 100.0,
                    winner.detections_per_day
                ),
            ),
            None => {
                plog("check", "no searched adaptive policy dominates aware-24");
                std::process::exit(1);
            }
        }
        plog(
            "check",
            &format!(
                "ok: {} candidates bit-identical on {} and {} threads",
                outcomes.len(),
                args.threads,
                other_threads
            ),
        );
    }
}
