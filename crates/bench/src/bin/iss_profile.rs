//! Manual timing harness for the ISS hot paths (`perf` is unavailable in
//! the build environment). Times the components of the cached and
//! uncached interpreter loops on the Network B workloads so optimisation
//! work targets the real bottleneck; run with
//! `cargo run --release -p iw-bench --bin iss_profile`.

use std::time::Instant;

use iw_bench::evaluation_nets;
use iw_kernels::{registry, PreparedFixed, TargetGroup};
use iw_rv32::{decode, Bus, MemWidth, Ram};

fn time<R>(label: &str, per: u64, mut f: impl FnMut() -> R) -> f64 {
    // One warm-up pass, then report the best of three (least interference).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let r = f();
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(r);
        best = best.min(dt);
    }
    let ns = best * 1e9 / per as f64;
    println!("{label:<44} {ns:>8.2} ns/op  ({:.3} ms total)", best * 1e3);
    ns
}

fn main() {
    // --- Component costs -------------------------------------------------
    let mut asm = iw_rv32::asm::Asm::new(0);
    {
        use iw_rv32::Reg;
        let top = asm.new_label();
        asm.bind(top);
        asm.lw(Reg::T0, Reg::A0, 0);
        asm.lw(Reg::T1, Reg::A1, 4);
        asm.mac(Reg::A2, Reg::T0, Reg::T1);
        asm.addi(Reg::A0, Reg::A0, 4);
        asm.addi(Reg::A1, Reg::A1, 4);
        asm.bne_to(Reg::A0, Reg::A3, top);
        asm.sw(Reg::A2, Reg::A4, 0);
        asm.ecall();
    }
    let image = asm.assemble().expect("assembles");
    let words: Vec<u32> = image
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();

    const N: u64 = 4_000_000;
    time("decode() on kernel-like word mix", N, || {
        let mut acc = 0u32;
        for i in 0..N {
            let w = words[(i as usize) % words.len()];
            if let Ok(ins) = decode(std::hint::black_box(w)) {
                acc = acc.wrapping_add(ins.is_mem() as u32);
            }
        }
        acc
    });

    let mut ram = Ram::new(0x1000_0000, 64 * 1024);
    time("Ram::load word", N, || {
        let mut acc = 0u32;
        for i in 0..N {
            let addr = 0x1000_0000 + ((i as u32 * 4) & 0xfff);
            acc = acc.wrapping_add(ram.load(std::hint::black_box(addr), MemWidth::W).unwrap());
        }
        acc
    });
    time("Ram::store word", N, || {
        for i in 0..N {
            let addr = 0x1000_0000 + ((i as u32 * 4) & 0xfff);
            ram.store(std::hint::black_box(addr), MemWidth::W, i as u32)
                .unwrap();
        }
    });

    // --- Full workloads --------------------------------------------------
    // Every paper-group registry target on Network B (the heavyweight
    // workload); the same rows `iss_bench` measures.
    let nets = evaluation_nets();
    let (_, _, fixed, qin) = &nets[1]; // Network B
    for entry in registry() {
        if entry.group != TargetGroup::Paper {
            continue;
        }
        let prep = PreparedFixed::on(&*entry.machine(), fixed, qin).expect("deploys");
        let instructions = prep.run().expect("runs").instructions;
        let name = entry.label;
        let c = time(&format!("{name}: predecoded run"), instructions, || {
            prep.run().expect("runs")
        });
        let u = time(&format!("{name}: uncached run"), instructions, || {
            prep.run_uncached().expect("runs")
        });
        let b = time(&format!("{name}: block-compiled run"), instructions, || {
            prep.run_blocks().expect("runs")
        });
        println!(
            "{name:<44} blocks {:.2}x over predecoded, {:.2}x over uncached ({instructions} instrs)",
            c / b,
            u / b
        );
        print_block_stats(&prep);
    }
}

/// Block-level report for one target: compilation and fusion-site counts
/// per pattern, dispatch-loop exit reasons, and (on the cluster) how many
/// bursts the lockstep runner-up gate cut short.
fn print_block_stats(prep: &PreparedFixed) {
    let Ok((_, Some(s))) = prep.run_blocks_stats() else {
        return;
    };
    println!(
        "  blocks: compiled={} hit_rate={:.4} dispatches={} avg_burst={:.2} fused_execs={} gated_breaks={}",
        s.compiled, s.hit_rate, s.dispatches, s.avg_burst, s.fused, s.gated_breaks
    );
    if let Ok((_, Some(d))) = prep.run_decoded_stats() {
        println!(
            "  decoded: picks={} avg_burst={:.3} gated_breaks={} (block picks={} avg_burst={:.3})",
            d.picks, d.avg_burst, d.gated_breaks, s.dispatches, s.avg_burst
        );
    }
    if let Some(r) = s.rv32 {
        println!(
            "  fusion sites: lp+lp+sdotsp={} lp+lp={} lp+sdotsp={} lp+mac={} mul+srai+add={} addi+branch={}",
            r.fused_lp_lp_sdotsp,
            r.fused_lp_lp,
            r.fused_lp_sdotsp,
            r.fused_lp_mac,
            r.fused_mul_srai_add,
            r.fused_addi_branch
        );
        println!(
            "  dispatch exits: fallthrough={} redirect={} halt={} smc={} fallback_steps={} demotions={}",
            r.exit_fallthrough, r.exit_redirect, r.exit_halt, r.exit_smc, r.fallback_steps, r.demotions
        );
    }
    if let Some(m) = s.m4 {
        println!(
            "  fused execs: vldr+vldr+vmla={} ldr+ldr+smlad={} ldr+ldr={} mul+asr+add={} subs+b={}",
            m.fused_vldr_vldr_vmla,
            m.fused_ldr_ldr_smlad,
            m.fused_ldr_ldr,
            m.fused_mul_asr_add,
            m.fused_subs_b
        );
    }
}
