//! Regenerates every table, figure and in-text result of the InfiniWolf
//! paper, plus the DESIGN.md ablations.
//!
//! ```text
//! cargo run --release -p iw-bench --bin tables            # everything
//! cargo run --release -p iw-bench --bin tables -- t3 x1   # a subset
//! ```

use iw_bench::Row;

fn print_rows(title: &str, rows: &[Row]) {
    print!("{}", iw_bench::render_rows(title, rows));
}

fn t1() {
    print_rows(
        "Table I — solar power generation (into battery)",
        &iw_bench::table1(),
    );
}

fn t2() {
    print_rows("Table II — wrist TEG power harvesting", &iw_bench::table2());
}

fn t3t4() {
    print!("{}", iw_bench::render_t3t4());
}

fn f3() {
    print_rows(
        "Fig. 3 — Network A architecture (5-50-50-3, tanh)",
        &iw_bench::fig3(),
    );
}

fn x1() {
    print_rows(
        "In-text X1 — M4F float vs fixed point (Network A)",
        &iw_bench::x1_float_vs_fixed(),
    );
}

fn x2() {
    let (_, rows) = iw_bench::x2_detection_budget();
    print_rows("In-text X2 — per-detection energy budget", &rows);
}

fn x3() {
    print_rows(
        "In-text X3 — self-sustainability (6 h indoor light)",
        &iw_bench::x3_sustainability(),
    );
}

fn a1() {
    println!("\n== A1 — cluster core-count sweep ==");
    for (name, rows) in iw_bench::a1_core_sweep() {
        println!("  {name}:");
        for (cores, cycles, speedup) in rows {
            println!("    {cores} core(s): {cycles:>8} cycles  ({speedup:.2}x vs 1 core)");
        }
    }
}

fn a2() {
    print!("{}", iw_bench::render_a2());
}

fn a3() {
    println!("\n== A3 — TCDM bank count (8 cores, Network A) ==");
    for (banks, cycles, stalls) in iw_bench::a3_tcdm_banks() {
        println!("    {banks:>2} banks: {cycles:>7} cycles, {stalls:>6} conflict stalls");
    }
}

fn a4() {
    let (lux, dt) = iw_bench::a4_harvest_sweeps();
    println!("\n== A4 — harvesting interpolation sweeps ==");
    println!("  solar (illuminance -> battery intake):");
    for (l, p) in lux {
        println!("    {l:>8.0} lx : {p:>8.3} mW");
    }
    println!("  TEG (skin-ambient gradient -> battery intake, still air):");
    for (d, p) in dt {
        println!("    dT {d:>4.1} K : {p:>8.2} uW");
    }
}

fn a5() {
    print_rows(
        "A5 — sustainable detection rate per environment",
        &iw_bench::a5_environment_rates(),
    );
}

fn a6() {
    print_rows(
        "A6 — local inference vs BLE raw streaming (per 3 s window)",
        &iw_bench::a6_local_vs_streaming(),
    );
}

fn a7() {
    print!("{}", iw_bench::render_a7());
}

fn a8() {
    println!("\n== A8 — extension: leave-one-subject-out generalisation ==");
    let report = iw_bench::a8_loso();
    for (i, acc) in report.per_subject_accuracy.iter().enumerate() {
        println!("    held-out subject {i}: {:.1}% accuracy", acc * 100.0);
    }
    println!("    mean: {:.1}%", report.mean_accuracy * 100.0);
}

fn a9() {
    println!("\n== A9 — extension: Network B weight streaming (8 cores) ==");
    let (direct, tiled, breakdown) = iw_bench::a9_netb_weight_streaming();
    println!("    direct L2 access : {direct:>7} cycles (paper-faithful kernel)");
    println!(
        "    DMA double-buffer: {tiled:>7} cycles estimate ({:.2}x faster)",
        direct as f64 / tiled as f64
    );
    let (compute, dma): (u64, u64) = breakdown
        .iter()
        .fold((0, 0), |(c, d), &(_, ci, di)| (c + ci, d + di));
    println!(
        "    totals: {compute} compute-in-TCDM cycles, {dma} DMA cycles across {} layers",
        breakdown.len()
    );
}

fn d1() {
    print!("{}", iw_bench::render_d1());
}

fn d2() {
    // 18 devices cover the full env × subject × policy cross product.
    print!("{}", iw_bench::render_d2(18, 4));
}

fn d3() {
    // 27 devices cover the cross product with the third (duty-cycled)
    // policy in the reliability sweep.
    print!("{}", iw_bench::render_d3(27, 4));
}

fn d4() {
    // Same 27-device cross product, joined into a network by the
    // epidemic scenario preset.
    print!("{}", iw_bench::render_d4(27, 4));
}

fn d5() {
    // The same 27-device stress cell as D3, one run per searched policy.
    print!("{}", iw_bench::render_d5(27, 4));
}

fn a10() {
    println!("\n== A10 — extension: cycle breakdown, Network A per target ==");
    for (target, wall_cycles, rows) in iw_bench::a10_cycle_breakdown() {
        println!("  {target} ({wall_cycles} wall cycles incl. stalls/offload):");
        for (label, cycles, share) in rows {
            println!(
                "    {label:<10} {cycles:>8} cycles  {:>5.1}%",
                share * 100.0
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run_all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |key: &str| run_all || args.iter().any(|a| a == key);

    println!("InfiniWolf reproduction — experiment harness");
    println!("(absolute-number matches are not expected on a simulator; the");
    println!(" paper column is shown so the shape can be judged per row)");

    if want("t1") {
        t1();
    }
    if want("t2") {
        t2();
    }
    if want("t3") || want("t4") {
        t3t4();
    }
    if want("f3") {
        f3();
    }
    if want("x1") {
        x1();
    }
    if want("x2") {
        x2();
    }
    if want("x3") {
        x3();
    }
    if want("a1") {
        a1();
    }
    if want("a2") {
        a2();
    }
    if want("a3") {
        a3();
    }
    if want("a4") {
        a4();
    }
    if want("a5") {
        a5();
    }
    if want("a6") {
        a6();
    }
    if want("a7") {
        a7();
    }
    if want("a8") {
        a8();
    }
    if want("a9") {
        a9();
    }
    if want("a10") {
        a10();
    }
    if want("d1") {
        d1();
    }
    if want("d2") {
        d2();
    }
    if want("d3") {
        d3();
    }
    if want("d4") {
        d4();
    }
    if want("d5") {
        d5();
    }
}
