//! Regenerates every table, figure and in-text result of the InfiniWolf
//! paper, plus the DESIGN.md ablations.
//!
//! ```text
//! cargo run --release -p iw-bench --bin tables            # everything
//! cargo run --release -p iw-bench --bin tables -- t3 x1   # a subset
//! ```

use iw_bench::Row;

fn print_rows(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "  {:<34} {:>12} {:>12} {:>7}",
        "condition / platform", "ours", "paper", "ratio"
    );
    for row in rows {
        let paper = row.paper.map_or("—".to_string(), |p| format!("{p:.3}"));
        let ratio = row.ratio().map_or("—".to_string(), |r| format!("{r:.2}"));
        println!(
            "  {:<34} {:>9.3} {:>2} {:>9} {:>9}",
            row.label, row.ours, row.unit, paper, ratio
        );
    }
}

fn t1() {
    print_rows(
        "Table I — solar power generation (into battery)",
        &iw_bench::table1(),
    );
}

fn t2() {
    print_rows("Table II — wrist TEG power harvesting", &iw_bench::table2());
}

fn t3t4() {
    for (name, rows) in iw_bench::table3_and_4() {
        let cycles: Vec<Row> = rows.iter().map(|(c, _)| c.clone()).collect();
        let energy: Vec<Row> = rows.iter().map(|(_, e)| e.clone()).collect();
        print_rows(&format!("Table III — runtime cycles, {name}"), &cycles);
        print_rows(
            &format!("Table IV — energy per classification, {name}"),
            &energy,
        );
        // The headline speedups the paper quotes against the M4.
        let m4 = cycles[0].ours;
        println!("  speedup vs ARM Cortex-M4:");
        for row in &cycles[1..] {
            println!(
                "    {:<32} {:.2}x (paper {:.2}x)",
                row.label,
                m4 / row.ours,
                PAPER_M4_SPEEDUP(&cycles, row)
            );
        }
    }
}

#[allow(non_snake_case)]
fn PAPER_M4_SPEEDUP(cycles: &[Row], row: &Row) -> f64 {
    let m4_paper = cycles[0].paper.unwrap_or(f64::NAN);
    m4_paper / row.paper.unwrap_or(f64::NAN)
}

fn f3() {
    print_rows(
        "Fig. 3 — Network A architecture (5-50-50-3, tanh)",
        &iw_bench::fig3(),
    );
}

fn x1() {
    print_rows(
        "In-text X1 — M4F float vs fixed point (Network A)",
        &iw_bench::x1_float_vs_fixed(),
    );
}

fn x2() {
    let (_, rows) = iw_bench::x2_detection_budget();
    print_rows("In-text X2 — per-detection energy budget", &rows);
}

fn x3() {
    print_rows(
        "In-text X3 — self-sustainability (6 h indoor light)",
        &iw_bench::x3_sustainability(),
    );
}

fn a1() {
    println!("\n== A1 — cluster core-count sweep ==");
    for (name, rows) in iw_bench::a1_core_sweep() {
        println!("  {name}:");
        for (cores, cycles, speedup) in rows {
            println!("    {cores} core(s): {cycles:>8} cycles  ({speedup:.2}x vs 1 core)");
        }
    }
}

fn a2() {
    println!("\n== A2 — Xpulp feature ablation (single RI5CY) ==");
    for (name, rows) in iw_bench::a2_xpulp_ablation() {
        println!("  {name}:");
        let base = rows.last().map_or(1, |(_, c)| *c);
        for (label, cycles) in &rows {
            println!(
                "    {label:<38} {cycles:>8} cycles  ({:.2}x vs plain RV32IM)",
                base as f64 / *cycles as f64
            );
        }
    }
}

fn a3() {
    println!("\n== A3 — TCDM bank count (8 cores, Network A) ==");
    for (banks, cycles, stalls) in iw_bench::a3_tcdm_banks() {
        println!("    {banks:>2} banks: {cycles:>7} cycles, {stalls:>6} conflict stalls");
    }
}

fn a4() {
    let (lux, dt) = iw_bench::a4_harvest_sweeps();
    println!("\n== A4 — harvesting interpolation sweeps ==");
    println!("  solar (illuminance -> battery intake):");
    for (l, p) in lux {
        println!("    {l:>8.0} lx : {p:>8.3} mW");
    }
    println!("  TEG (skin-ambient gradient -> battery intake, still air):");
    for (d, p) in dt {
        println!("    dT {d:>4.1} K : {p:>8.2} uW");
    }
}

fn a5() {
    print_rows(
        "A5 — sustainable detection rate per environment",
        &iw_bench::a5_environment_rates(),
    );
}

fn a6() {
    print_rows(
        "A6 — local inference vs BLE raw streaming (per 3 s window)",
        &iw_bench::a6_local_vs_streaming(),
    );
}

fn a7() {
    println!("\n== A7 — extension: 16-bit SIMD (Q15) vs 32-bit fixed ==");
    for (name, rows) in iw_bench::a7_q15_simd() {
        println!("  {name}:");
        for (platform, q31, q15) in rows {
            println!(
                "    {platform:<28} q31 {q31:>8}  q15 {q15:>8}  ({:.2}x faster)",
                q31 as f64 / q15 as f64
            );
        }
    }
}

fn a8() {
    println!("\n== A8 — extension: leave-one-subject-out generalisation ==");
    let report = iw_bench::a8_loso();
    for (i, acc) in report.per_subject_accuracy.iter().enumerate() {
        println!("    held-out subject {i}: {:.1}% accuracy", acc * 100.0);
    }
    println!("    mean: {:.1}%", report.mean_accuracy * 100.0);
}

fn a9() {
    println!("\n== A9 — extension: Network B weight streaming (8 cores) ==");
    let (direct, tiled, breakdown) = iw_bench::a9_netb_weight_streaming();
    println!("    direct L2 access : {direct:>7} cycles (paper-faithful kernel)");
    println!(
        "    DMA double-buffer: {tiled:>7} cycles estimate ({:.2}x faster)",
        direct as f64 / tiled as f64
    );
    let (compute, dma): (u64, u64) = breakdown
        .iter()
        .fold((0, 0), |(c, d), &(_, ci, di)| (c + ci, d + di));
    println!(
        "    totals: {compute} compute-in-TCDM cycles, {dma} DMA cycles across {} layers",
        breakdown.len()
    );
}

fn a10() {
    println!("\n== A10 — extension: cycle breakdown, Network A per target ==");
    for (target, wall_cycles, rows) in iw_bench::a10_cycle_breakdown() {
        println!("  {target} ({wall_cycles} wall cycles incl. stalls/offload):");
        for (label, cycles, share) in rows {
            println!(
                "    {label:<10} {cycles:>8} cycles  {:>5.1}%",
                share * 100.0
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run_all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |key: &str| run_all || args.iter().any(|a| a == key);

    println!("InfiniWolf reproduction — experiment harness");
    println!("(absolute-number matches are not expected on a simulator; the");
    println!(" paper column is shown so the shape can be judged per row)");

    if want("t1") {
        t1();
    }
    if want("t2") {
        t2();
    }
    if want("t3") || want("t4") {
        t3t4();
    }
    if want("f3") {
        f3();
    }
    if want("x1") {
        x1();
    }
    if want("x2") {
        x2();
    }
    if want("x3") {
        x3();
    }
    if want("a1") {
        a1();
    }
    if want("a2") {
        a2();
    }
    if want("a3") {
        a3();
    }
    if want("a4") {
        a4();
    }
    if want("a5") {
        a5();
    }
    if want("a6") {
        a6();
    }
    if want("a7") {
        a7();
    }
    if want("a8") {
        a8();
    }
    if want("a9") {
        a9();
    }
    if want("a10") {
        a10();
    }
}
