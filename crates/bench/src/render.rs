//! Text renderers for the experiment tables.
//!
//! The `tables` binary and the golden-output regression test share these,
//! so "what the harness prints" is a single, testable artefact: the
//! refactored execution layer must reproduce the frozen pre-refactor
//! snapshot byte for byte.

use std::fmt::Write;

use crate::Row;

/// Renders one titled table of [`Row`]s exactly as the `tables` binary
/// prints it.
#[must_use]
pub fn render_rows(title: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    writeln!(out, "\n== {title} ==").expect("string write");
    writeln!(
        out,
        "  {:<34} {:>12} {:>12} {:>7}",
        "condition / platform", "ours", "paper", "ratio"
    )
    .expect("string write");
    for row in rows {
        let paper = row.paper.map_or("—".to_string(), |p| format!("{p:.3}"));
        let ratio = row.ratio().map_or("—".to_string(), |r| format!("{r:.2}"));
        writeln!(
            out,
            "  {:<34} {:>9.3} {:>2} {:>9} {:>9}",
            row.label, row.ours, row.unit, paper, ratio
        )
        .expect("string write");
    }
    out
}

fn paper_m4_speedup(cycles: &[Row], row: &Row) -> f64 {
    let m4_paper = cycles[0].paper.unwrap_or(f64::NAN);
    m4_paper / row.paper.unwrap_or(f64::NAN)
}

/// Renders Tables III and IV (cycles + energy per classification) with the
/// headline speedups the paper quotes against the M4.
#[must_use]
pub fn render_t3t4() -> String {
    let mut out = String::new();
    for (name, rows) in crate::table3_and_4() {
        let cycles: Vec<Row> = rows.iter().map(|(c, _)| c.clone()).collect();
        let energy: Vec<Row> = rows.iter().map(|(_, e)| e.clone()).collect();
        out.push_str(&render_rows(
            &format!("Table III — runtime cycles, {name}"),
            &cycles,
        ));
        out.push_str(&render_rows(
            &format!("Table IV — energy per classification, {name}"),
            &energy,
        ));
        let m4 = cycles[0].ours;
        writeln!(out, "  speedup vs ARM Cortex-M4:").expect("string write");
        for row in &cycles[1..] {
            writeln!(
                out,
                "    {:<32} {:.2}x (paper {:.2}x)",
                row.label,
                m4 / row.ours,
                paper_m4_speedup(&cycles, row)
            )
            .expect("string write");
        }
    }
    out
}

/// Renders the A2 Xpulp-feature ablation.
#[must_use]
pub fn render_a2() -> String {
    let mut out = String::new();
    writeln!(out, "\n== A2 — Xpulp feature ablation (single RI5CY) ==").expect("string write");
    for (name, rows) in crate::a2_xpulp_ablation() {
        writeln!(out, "  {name}:").expect("string write");
        let base = rows.last().map_or(1, |(_, c)| *c);
        for (label, cycles) in &rows {
            writeln!(
                out,
                "    {label:<38} {cycles:>8} cycles  ({:.2}x vs plain RV32IM)",
                base as f64 / *cycles as f64
            )
            .expect("string write");
        }
    }
    out
}

/// Renders the D1 cluster stall diagnostics (8-core kernel, both nets):
/// each cycle class with its share of the summed per-core cycles.
#[must_use]
pub fn render_d1() -> String {
    let mut out = String::new();
    writeln!(out, "\n== D1 — cluster cycle accounting (8 cores) ==").expect("string write");
    for (name, d) in crate::d1_cluster_diagnostics() {
        let total = d.core_cycles.max(1) as f64;
        writeln!(
            out,
            "  {name}: {} core-cycles across {} cores, {} barrier episodes",
            d.core_cycles, d.cores, d.barriers
        )
        .expect("string write");
        for (label, cycles) in [
            ("busy (instruction base cost)", d.busy_cycles),
            ("TCDM bank-conflict stalls", d.tcdm_conflict_stalls),
            ("L2 port stalls", d.l2_port_stalls),
            ("barrier wait", d.barrier_wait_cycles),
        ] {
            writeln!(
                out,
                "    {label:<30} {cycles:>8} cycles  {:>5.1}%",
                cycles as f64 / total * 100.0
            )
            .expect("string write");
        }
    }
    out
}

/// Renders the D2 fleet sweep: the per-policy aggregate rows plus the
/// determinism digest and event-throughput footer.
#[must_use]
pub fn render_d2(devices: usize, threads: usize) -> String {
    let (report, rows) = crate::d2_fleet_sweep(devices, threads);
    let mut out = render_rows(
        &format!("D2 — fleet sweep ({devices} devices, {threads} threads)"),
        &rows,
    );
    writeln!(
        out,
        "  {} simulated days, {} engine events, digest {:016x}",
        report.simulated_s / 86_400.0,
        report.events,
        report.digest
    )
    .expect("string write");
    out
}

/// Renders the D3 reliability sweep: per fault profile, the per-policy
/// uptime / signal-gating / sync-delivery aggregates, the fleet-wide
/// fault-episode counters, and the determinism digest.
#[must_use]
pub fn render_d3(devices: usize, threads: usize) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "\n== D3 — reliability under fault injection ({devices} devices, {threads} threads) =="
    )
    .expect("string write");
    for (profile, report) in crate::d3_reliability_sweep(devices, threads) {
        writeln!(
            out,
            "  profile {:<8}  mean uptime {:>6.2}%  max |conservation drift| {:.1e} J",
            profile.label(),
            report.mean_uptime * 100.0,
            report.max_conservation_j
        )
        .expect("string write");
        for stats in &report.policies {
            let rel = &stats.reliability;
            let delivered = if rel.sync_episodes > 0 {
                rel.sync_ok as f64 / rel.sync_episodes as f64 * 100.0
            } else {
                100.0
            };
            writeln!(
                out,
                "    {:<10} uptime {:>6.2}%  {:>7.0} det/day  {:>4} gated  sync {:>5.1}% ok ({} retried, {} dropped)  {} brownouts, mean recovery {:.1} s",
                stats.name,
                stats.mean_uptime * 100.0,
                stats.detections_per_day,
                rel.degraded_windows,
                delivered,
                rel.sync_retried,
                rel.sync_dropped,
                rel.brownouts,
                rel.mean_recovery_s()
            )
            .expect("string write");
        }
        let episodes: Vec<String> = report
            .faults
            .iter_nonzero()
            .map(|(kind, count)| format!("{} {count}", kind.label()))
            .collect();
        if !episodes.is_empty() {
            writeln!(out, "    fault episodes: {}", episodes.join(", ")).expect("string write");
        }
        writeln!(out, "    digest {:016x}", report.digest).expect("string write");
    }
    out
}

/// Renders the D4 epidemic sweep: per fault profile, the fleet-wide
/// contact/uplink tallies, BLE scan energy, the epoch-barrier epidemic
/// outcome (seeded → infected, attack rate, per-epoch spread curve) and
/// the determinism digest.
#[must_use]
pub fn render_d4(devices: usize, threads: usize) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "\n== D4 — epidemic scenario on the networked fleet ({devices} devices, {threads} threads) =="
    )
    .expect("string write");
    for (profile, report) in crate::d4_epidemic_sweep(devices, threads) {
        let scn = report
            .scenario
            .as_ref()
            .expect("D4 reports carry scenario totals");
        writeln!(
            out,
            "  profile {:<8}  mean uptime {:>6.2}%  contacts {:>5} observed / {:>3} missed / {:>5} uplinked  scan {:.4} J",
            profile.label(),
            report.mean_uptime * 100.0,
            scn.contacts_observed,
            scn.contacts_missed,
            scn.contacts_uplinked,
            scn.scan_energy_j
        )
        .expect("string write");
        let epi = scn
            .epidemic
            .as_ref()
            .expect("in-process runs fold the epidemic");
        let curve: Vec<String> = epi.newly_per_epoch.iter().map(u64::to_string).collect();
        writeln!(
            out,
            "    epidemic: {} seeded -> {} infected ({:.1}% attack rate)  new per epoch [{}]",
            epi.seeded,
            epi.infected,
            epi.attack_rate(report.device_count as u64) * 100.0,
            curve.join(" ")
        )
        .expect("string write");
        writeln!(out, "    digest {:016x}", report.digest).expect("string write");
    }
    out
}

/// Renders the D5 Pareto policy search: one line per candidate with the
/// three Pareto axes, the target-selection split, the backoff counters
/// and a `*` on front members, then the front itself and the combined
/// search digest.
#[must_use]
pub fn render_d5(devices: usize, threads: usize) -> String {
    let outcomes = crate::d5_policy_search(
        devices,
        threads,
        crate::SEED,
        &crate::d5_candidates(crate::SEED),
    );
    render_d5_table(devices, threads, &outcomes)
}

/// Renders an already-computed D5 outcome set (shared by [`render_d5`]
/// and the `policy-search` binary, so the CLI prints exactly what the
/// golden test freezes).
#[must_use]
pub fn render_d5_table(
    devices: usize,
    threads: usize,
    outcomes: &[crate::PolicyOutcome],
) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "\n== D5 — Pareto policy search on the harsh stress cell ({devices} devices, {threads} threads) =="
    )
    .expect("string write");
    for o in outcomes {
        writeln!(
            out,
            "  {:<12} uptime {:>6.2}%  {:>7.0} det/day  {:>8.1} uJ/det  m4/ibex/cl8 {:>5}/{:>5}/{:>5}  {:>4} skipped, {:>3} stretched{}",
            o.name,
            o.uptime * 100.0,
            o.detections_per_day,
            o.energy_per_detection_j * 1e6,
            o.target_m4,
            o.target_ibex,
            o.target_cluster,
            o.backoff_skips,
            o.sync_stretches,
            if o.pareto { "  *" } else { "" }
        )
        .expect("string write");
    }
    let front: Vec<&str> = outcomes
        .iter()
        .filter(|o| o.pareto)
        .map(|o| o.name.as_str())
        .collect();
    writeln!(out, "  Pareto front (*): {}", front.join(", ")).expect("string write");
    writeln!(
        out,
        "  search digest {:016x}",
        crate::d5_search_digest(outcomes)
    )
    .expect("string write");
    out
}

/// Renders the A7 Q15-vs-Q31 comparison.
#[must_use]
pub fn render_a7() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "\n== A7 — extension: 16-bit SIMD (Q15) vs 32-bit fixed =="
    )
    .expect("string write");
    for (name, rows) in crate::a7_q15_simd() {
        writeln!(out, "  {name}:").expect("string write");
        for (platform, q31, q15) in rows {
            writeln!(
                out,
                "    {platform:<28} q31 {q31:>8}  q15 {q15:>8}  ({:.2}x faster)",
                q31 as f64 / q15 as f64
            )
            .expect("string write");
        }
    }
    out
}
