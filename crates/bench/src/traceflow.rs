//! Shared flow behind the `trace` binary and the trace-artifact tests:
//! run one registry target on an evaluation network with the recording
//! sink attached, and export both observability artifacts (Perfetto
//! timeline + folded-stack hotspot report).

use infiniwolf::{detection_costs, DetectionBudget};
use iw_harvest::{record_harvest, EnvProfile};
use iw_kernels::{registry, FixedRun, PreparedFixed};
use iw_sim::{DetectionPolicy, DeviceConfig};
use iw_trace::Recorder;

use crate::evaluation_nets;

/// The two artifacts of one recorded run, plus the run they observed.
#[derive(Debug, Clone)]
pub struct TraceArtifacts {
    /// Chrome trace-event JSON, loadable at <https://ui.perfetto.dev>.
    pub chrome_json: String,
    /// Folded-stack hotspot report of the *simulated* program
    /// (flamegraph.pl / inferno compatible).
    pub folded: String,
    /// Suggested artifact file stem, e.g. `neta-cluster8`.
    pub stem: String,
    /// The classification the recording observed (identical to an
    /// unrecorded run).
    pub run: FixedRun,
}

/// Runs `target_id` (a registry id; `cl8` is accepted as an alias for
/// `cluster8`) on `net_key` (`neta`/`netb`) with a [`Recorder`] attached
/// and exports both artifacts. The recording also carries the
/// paper-indoor-day harvesting trajectory on a `harvest` track, so the
/// compute timeline and the energy context ship in one trace.
///
/// # Errors
///
/// A human-readable message for unknown nets/targets or failed runs.
pub fn trace_target(net_key: &str, target_id: &str) -> Result<TraceArtifacts, String> {
    let ni = match net_key {
        "neta" | "a" => 0,
        "netb" | "b" => 1,
        other => return Err(format!("unknown net '{other}' (expected neta or netb)")),
    };
    let id = match target_id {
        "cl8" => "cluster8",
        other => other,
    };
    let entry = registry().into_iter().find(|e| e.id == id).ok_or_else(|| {
        let known: Vec<&str> = registry().iter().map(|e| e.id).collect();
        format!("unknown target '{id}' (known: {})", known.join(", "))
    })?;
    let nets = evaluation_nets();
    let (_, _, fixed, qin) = &nets[ni];
    let prep = PreparedFixed::on(&*entry.machine(), fixed, qin).map_err(|e| e.to_string())?;
    let mut rec = Recorder::new();
    let run = prep.run_recorded(&mut rec).map_err(|e| e.to_string())?;

    // Energy context: a day of dual-source harvesting next to the compute
    // timeline (per-source intake, load and SoC counters, 1 s ticks),
    // simulated on the discrete-event engine at the paper's 24/min rate.
    let mut day = DeviceConfig::new(
        EnvProfile::paper_indoor_day(),
        DetectionPolicy::FixedRate { per_minute: 24.0 },
        detection_costs(&DetectionBudget::paper()),
    );
    day.battery.set_soc(0.5);
    day.detection_spans = false;
    let report = day.run();
    record_harvest(&report.sim, &mut rec);

    let net = if ni == 0 { "neta" } else { "netb" };
    let root = format!("{net}/{id}");
    Ok(TraceArtifacts {
        chrome_json: rec.chrome_trace_json(),
        folded: rec.folded_stacks(&root),
        stem: format!("{net}-{id}"),
        run,
    })
}
