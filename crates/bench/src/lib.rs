//! # iw-bench — the experiment harness
//!
//! One function per table/figure/in-text result of the InfiniWolf paper
//! (and per ablation from DESIGN.md), each returning structured rows that
//! the `tables` binary renders and the integration tests assert on.

#![warn(missing_docs)]

use infiniwolf::{measure_detection_budget, sustainability, DetectionBudget};
use iw_fann::presets::{network_a, network_b};
use iw_fann::{FixedNet, Footprint, Mlp};
use iw_harvest::{
    daily_intake, EnvProfile, Illuminant, LightCondition, SolarHarvester, TegHarvester,
    ThermalCondition,
};
use iw_kernels::{
    run_fixed, run_fixed_on, run_m4_fixed, run_m4_float, run_wolf_fixed_with, targets_in,
    FixedTarget, RvKernelOpts, TargetGroup,
};
use iw_mrwolf::ClusterConfig;
use iw_nrf52::BleRadio;
use iw_sim::{
    BleSync, ComputeJob, DetectionPolicy, FaultBackoff, FaultProfile, FleetConfig, FleetReport,
    PolicySpec, RateRule, Scenario, TargetRule,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
pub use render::{
    render_a2, render_a7, render_d1, render_d2, render_d3, render_d4, render_d5, render_d5_table,
    render_rows, render_t3t4,
};
use std::sync::Arc;
pub use traceflow::{trace_target, TraceArtifacts};

pub mod render;
pub mod traceflow;

/// Seed used for every deterministic experiment.
pub const SEED: u64 = 2020;

/// One measured value with its paper reference.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Row label (condition or platform).
    pub label: String,
    /// Our measured/simulated value.
    pub ours: f64,
    /// The paper's published value, if it reports one.
    pub paper: Option<f64>,
    /// Unit string for display.
    pub unit: &'static str,
}

impl Row {
    /// Ratio of ours to the paper value (1.0 = exact match).
    #[must_use]
    pub fn ratio(&self) -> Option<f64> {
        self.paper.map(|p| self.ours / p)
    }
}

/// Builds the two evaluation networks with deterministic random weights
/// and a deterministic input, as the timing experiments need (cycle counts
/// are input-independent; weights only need to be in range).
#[must_use]
pub fn evaluation_nets() -> [(String, Mlp, FixedNet, Vec<i32>); 2] {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut make = |name: &str, mut net: Mlp| {
        net.randomize_weights(&mut rng, 0.1);
        let fixed = FixedNet::export(&net).expect("evaluation nets quantise");
        let input: Vec<f32> = (0..net.num_inputs())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let qin = fixed.quantize_input(&input);
        (name.to_string(), net, fixed, qin)
    };
    [
        make("Network A", network_a()),
        make("Network B", network_b()),
    ]
}

/// **T1** — Table I: solar power generation (mW into the battery).
#[must_use]
pub fn table1() -> Vec<Row> {
    let h = SolarHarvester::infiniwolf();
    [
        ("Outdoor 30 klx", LightCondition::outdoor(), 24.711),
        ("Indoor 700 lx", LightCondition::indoor(), 0.9),
    ]
    .into_iter()
    .map(|(label, light, paper)| Row {
        label: label.to_string(),
        ours: h.battery_intake_w(&light) * 1e3,
        paper: Some(paper),
        unit: "mW",
    })
    .collect()
}

/// **T2** — Table II: TEG power harvesting (µW into the battery).
#[must_use]
pub fn table2() -> Vec<Row> {
    let h = TegHarvester::infiniwolf();
    [
        (
            "22°C room / 32°C skin, no wind",
            ThermalCondition::warm_room(),
            24.0,
        ),
        (
            "15°C room / 30°C skin, no wind",
            ThermalCondition::cool_room(),
            55.5,
        ),
        (
            "15°C room / 30°C skin, 42 km/h",
            ThermalCondition::cool_windy(),
            155.4,
        ),
    ]
    .into_iter()
    .map(|(label, cond, paper)| Row {
        label: label.to_string(),
        ours: h.battery_intake_w(&cond) * 1e6,
        paper: Some(paper),
        unit: "µW",
    })
    .collect()
}

/// Paper Table III cycle counts, row-major `[net][target]`.
pub const PAPER_T3: [[u64; 4]; 2] = [
    [30_210, 40_661, 22_772, 6_126],
    [902_763, 955_588, 519_354, 108_316],
];

/// Paper Table IV energies in µJ, row-major `[net][target]`.
pub const PAPER_T4: [[f64; 4]; 2] = [[5.1, 1.3, 2.9, 1.2], [153.8, 31.5, 65.6, 21.6]];

/// **T3/T4** — Tables III & IV: runtime cycles and energy per
/// classification. Returns `(net name, rows)` pairs; each row's `ours` is
/// cycles for T3 and µJ for T4.
#[must_use]
pub fn table3_and_4() -> Vec<(String, Vec<(Row, Row)>)> {
    evaluation_nets()
        .into_iter()
        .enumerate()
        .map(|(ni, (name, _, fixed, qin))| {
            let rows = targets_in(TargetGroup::Paper)
                .into_iter()
                .enumerate()
                .map(|(ti, entry)| {
                    let run = run_fixed_on(&*entry.machine(), &fixed, &qin).expect("target runs");
                    (
                        Row {
                            label: entry.label.to_string(),
                            ours: run.cycles as f64,
                            paper: Some(PAPER_T3[ni][ti] as f64),
                            unit: "cycles",
                        },
                        Row {
                            label: entry.label.to_string(),
                            ours: run.energy_j * 1e6,
                            paper: Some(PAPER_T4[ni][ti]),
                            unit: "µJ",
                        },
                    )
                })
                .collect();
            (name, rows)
        })
        .collect()
}

/// **F3** — Fig. 3: the Network A architecture summary.
#[must_use]
pub fn fig3() -> Vec<Row> {
    let net = network_a();
    let fp = Footprint::of(&net);
    vec![
        Row {
            label: "Input features".into(),
            ours: net.num_inputs() as f64,
            paper: Some(5.0),
            unit: "",
        },
        Row {
            label: "Hidden layers".into(),
            ours: (net.layers().len() - 1) as f64,
            paper: Some(2.0),
            unit: "",
        },
        Row {
            label: "Nodes per hidden layer".into(),
            ours: net.layers()[0].out_count() as f64,
            paper: Some(50.0),
            unit: "",
        },
        Row {
            label: "Output classes".into(),
            ours: net.num_outputs() as f64,
            paper: Some(3.0),
            unit: "",
        },
        Row {
            label: "Total neurons".into(),
            ours: fp.neurons as f64,
            paper: Some(108.0),
            unit: "",
        },
        Row {
            label: "Total weights".into(),
            ours: fp.weights as f64,
            paper: Some(3003.0),
            unit: "",
        },
        Row {
            label: "Memory footprint".into(),
            ours: fp.kib(),
            paper: Some(14.0),
            unit: "KiB",
        },
    ]
}

/// **X1** — in-text: Network A on the M4, float (FPU) vs fixed point.
#[must_use]
pub fn x1_float_vs_fixed() -> Vec<Row> {
    let [(_, net, fixed, qin), _] = evaluation_nets();
    let mut rng = StdRng::seed_from_u64(SEED + 1);
    let input: Vec<f32> = (0..5).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let fx = run_m4_fixed(&fixed, &qin).expect("fixed runs");
    let fl = run_m4_float(&net, &input).expect("float runs");
    vec![
        Row {
            label: "Fixed point".into(),
            ours: fx.cycles as f64,
            paper: Some(30_210.0),
            unit: "cycles",
        },
        Row {
            label: "Float (FPU)".into(),
            ours: fl.cycles as f64,
            paper: Some(38_478.0),
            unit: "cycles",
        },
        Row {
            label: "Float/fixed ratio".into(),
            ours: fl.cycles as f64 / fx.cycles as f64,
            paper: Some(1.27),
            unit: "×",
        },
    ]
}

/// **X2** — in-text: the per-detection energy budget (µJ).
#[must_use]
pub fn x2_detection_budget() -> (DetectionBudget, Vec<Row>) {
    let [(_, _, fixed, qin), _] = evaluation_nets();
    let budget = measure_detection_budget(&fixed, &qin, FixedTarget::WolfCluster { cores: 8 })
        .expect("cluster runs");
    let rows = vec![
        Row {
            label: "Acquisition (3 s ECG+GSR)".into(),
            ours: budget.acquisition_j * 1e6,
            paper: Some(600.0),
            unit: "µJ",
        },
        Row {
            label: "Feature extraction".into(),
            ours: budget.features_j * 1e6,
            paper: Some(1.0),
            unit: "µJ",
        },
        Row {
            label: "Classification (8 cores)".into(),
            ours: budget.classification_j * 1e6,
            paper: Some(1.2),
            unit: "µJ",
        },
        Row {
            label: "Total per detection".into(),
            ours: budget.total_uj(),
            paper: Some(602.2),
            unit: "µJ",
        },
    ];
    (budget, rows)
}

/// **X3** — in-text: self-sustainability (21.44 J/day → ~24 det/min).
#[must_use]
pub fn x3_sustainability() -> Vec<Row> {
    let (budget, _) = x2_detection_budget();
    let report = sustainability(
        &EnvProfile::paper_indoor_day(),
        &SolarHarvester::infiniwolf(),
        &TegHarvester::infiniwolf(),
        &budget,
    );
    vec![
        Row {
            label: "Harvested energy per day".into(),
            ours: report.intake_j_per_day,
            paper: Some(21.44),
            unit: "J",
        },
        Row {
            label: "Energy per detection".into(),
            ours: report.energy_per_detection_j * 1e6,
            paper: Some(602.2),
            unit: "µJ",
        },
        Row {
            label: "Self-sustained detections".into(),
            ours: report.detections_per_minute,
            paper: Some(24.0),
            unit: "/min",
        },
    ]
}

/// Per-network core-sweep rows: `(cores, cycles, speedup vs 1 core)`.
pub type CoreSweep = Vec<(String, Vec<(usize, u64, f64)>)>;

/// **A1** — ablation: cluster core-count sweep on both networks.
/// Returns `(net name, Vec<(cores, cycles, speedup vs 1 core)>)`.
#[must_use]
pub fn a1_core_sweep() -> CoreSweep {
    evaluation_nets()
        .into_iter()
        .map(|(name, _, fixed, qin)| {
            let mut rows = Vec::new();
            let mut single = 0u64;
            for cores in [1usize, 2, 4, 8] {
                let run = run_fixed(FixedTarget::WolfCluster { cores }, &fixed, &qin)
                    .expect("cluster runs");
                if cores == 1 {
                    single = run.cycles;
                }
                rows.push((cores, run.cycles, single as f64 / run.cycles as f64));
            }
            (name, rows)
        })
        .collect()
}

/// **A2** — ablation: Xpulp features on/off on a single RI5CY core. The
/// variants are the [`TargetGroup::XpulpAblation`] rows of the machine
/// registry.
#[must_use]
pub fn a2_xpulp_ablation() -> Vec<(String, Vec<(String, u64)>)> {
    evaluation_nets()
        .into_iter()
        .map(|(name, _, fixed, qin)| {
            let rows = targets_in(TargetGroup::XpulpAblation)
                .into_iter()
                .map(|entry| {
                    let run = run_fixed_on(&*entry.machine(), &fixed, &qin).expect("riscy runs");
                    (entry.label.to_string(), run.cycles)
                })
                .collect();
            (name, rows)
        })
        .collect()
}

/// **A3** — ablation: TCDM bank count under the 8-core kernel
/// (Network A; returns `(banks, cycles, conflict stalls)`).
#[must_use]
pub fn a3_tcdm_banks() -> Vec<(usize, u64, u64)> {
    let [(_, _, fixed, qin), _] = evaluation_nets();
    [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .map(|banks| {
            let cfg = ClusterConfig {
                tcdm_banks: banks,
                ..ClusterConfig::default()
            };
            let run =
                run_wolf_fixed_with(&fixed, &qin, &RvKernelOpts::cluster(8), Some(cfg), false)
                    .expect("cluster runs");
            let stats = run.cluster.expect("cluster stats");
            (banks, run.cycles, stats.tcdm_conflict_stalls)
        })
        .collect()
}

/// One harvesting sweep: `(operating point, harvested power in watts)`.
pub type HarvestSweep = Vec<(f64, f64)>;

/// **A4** — ablation: harvesting sweeps (lux and ΔT interpolation between
/// the paper's measured points).
#[must_use]
pub fn a4_harvest_sweeps() -> (HarvestSweep, HarvestSweep) {
    let solar = SolarHarvester::infiniwolf();
    let lux_sweep: Vec<(f64, f64)> = [100.0, 300.0, 700.0, 2_000.0, 10_000.0, 30_000.0, 60_000.0]
        .into_iter()
        .map(|lux| {
            let light = LightCondition {
                lux,
                illuminant: if lux >= 5_000.0 {
                    Illuminant::Sunlight
                } else {
                    Illuminant::IndoorLed
                },
            };
            (lux, solar.battery_intake_w(&light) * 1e3)
        })
        .collect();
    let teg = TegHarvester::infiniwolf();
    let dt_sweep: Vec<(f64, f64)> = [2.0, 5.0, 10.0, 15.0, 20.0]
        .into_iter()
        .map(|dt| {
            let cond = ThermalCondition {
                ambient_c: 30.0 - dt,
                skin_c: 30.0,
                wind_kmh: 0.0,
            };
            (dt, teg.battery_intake_w(&cond) * 1e6)
        })
        .collect();
    (lux_sweep, dt_sweep)
}

/// **A5** — ablation: sustainable detection rate across environments.
#[must_use]
pub fn a5_environment_rates() -> Vec<Row> {
    let (budget, _) = x2_detection_budget();
    let scenarios: [(&str, EnvProfile); 3] = [
        (
            "Paper indoor day (6 h light)",
            EnvProfile::paper_indoor_day(),
        ),
        ("Office + commute (2 h outdoor)", {
            let mut p = EnvProfile::paper_indoor_day();
            p.segments[0].duration_s = 8.0 * 3600.0;
            p.segments.insert(
                1,
                iw_harvest::EnvSegment {
                    duration_s: 2.0 * 3600.0,
                    light: LightCondition::outdoor(),
                    thermal: ThermalCondition::cool_room(),
                },
            );
            p.segments[2].duration_s = 14.0 * 3600.0;
            p
        }),
        ("Dark day, cool room (TEG only)", {
            EnvProfile {
                segments: vec![iw_harvest::EnvSegment {
                    duration_s: 24.0 * 3600.0,
                    light: LightCondition::dark(),
                    thermal: ThermalCondition::cool_room(),
                }],
            }
        }),
    ];
    scenarios
        .into_iter()
        .map(|(label, profile)| {
            let report = sustainability(
                &profile,
                &SolarHarvester::infiniwolf(),
                &TegHarvester::infiniwolf(),
                &budget,
            );
            Row {
                label: label.to_string(),
                ours: report.detections_per_minute,
                paper: None,
                unit: "det/min",
            }
        })
        .collect()
}

/// **A6** — ablation: on-board classification vs streaming raw data.
#[must_use]
pub fn a6_local_vs_streaming() -> Vec<Row> {
    let dev = infiniwolf::InfiniWolf::new();
    let (budget, _) = x2_detection_budget();
    let local = budget.total_j() + dev.result_notification_j();
    let remote = budget.acquisition_j + dev.raw_window_streaming_j();
    // Both paths acquire the same 3 s window; the architectural choice is
    // what happens *after* acquisition.
    let local_post = local - budget.acquisition_j;
    let remote_post = remote - budget.acquisition_j;
    vec![
        Row {
            label: "Local classify + notify result".into(),
            ours: local * 1e6,
            paper: None,
            unit: "µJ",
        },
        Row {
            label: "Stream raw window over BLE".into(),
            ours: remote * 1e6,
            paper: None,
            unit: "µJ",
        },
        Row {
            label: "…post-acquisition, local".into(),
            ours: local_post * 1e6,
            paper: None,
            unit: "µJ",
        },
        Row {
            label: "…post-acquisition, streaming".into(),
            ours: remote_post * 1e6,
            paper: None,
            unit: "µJ",
        },
        Row {
            label: "Post-acquisition ratio".into(),
            ours: remote_post / local_post,
            paper: None,
            unit: "×",
        },
    ]
}

/// Per-network Q15-vs-Q32 rows: `(platform, Q32 cycles, Q15 cycles)`.
pub type Q15Comparison = Vec<(String, Vec<(String, u64, u64)>)>;

/// **A7** — extension: 16-bit SIMD (Q15) kernels vs the paper's 32-bit
/// fixed point. Returns `(net name, rows)` where rows compare cycles on
/// the same platform with both quantisations.
#[must_use]
pub fn a7_q15_simd() -> Q15Comparison {
    use iw_fann::Q15Net;
    use iw_kernels::run_q15_on;
    let mut rng = StdRng::seed_from_u64(SEED);
    evaluation_nets()
        .into_iter()
        .map(|(name, net, fixed, qin)| {
            let q15 = Q15Net::export(&net).expect("q15 export");
            let input: Vec<f32> = (0..net.num_inputs())
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect();
            let q15_in = q15.quantize_input(&input);
            // Each registry row runs *both* quantisations on the same
            // machine: (platform, q31 cycles, q15 cycles).
            let rows = targets_in(TargetGroup::Q15)
                .into_iter()
                .map(|entry| {
                    let machine = entry.machine();
                    let q31 = run_fixed_on(&*machine, &fixed, &qin)
                        .expect("q31 runs")
                        .cycles;
                    let q15c = run_q15_on(&*machine, &q15, &q15_in)
                        .expect("q15 runs")
                        .cycles;
                    (entry.label.to_string(), q31, q15c)
                })
                .collect();
            (name, rows)
        })
        .collect()
}

/// **A8** — extension: leave-one-subject-out generalisation of the
/// trained detector across synthetic participants.
#[must_use]
pub fn a8_loso() -> infiniwolf::LosoReport {
    use infiniwolf::{loso_evaluation, PipelineConfig};
    use iw_sensors::DatasetConfig;
    let cfg = PipelineConfig {
        dataset: DatasetConfig {
            windows_per_level: 8,
            window_s: 45.0,
            subjects: 4,
            ..DatasetConfig::default()
        },
        max_epochs: 250,
        ..PipelineConfig::default()
    };
    loso_evaluation(&cfg).expect("loso folds quantise")
}

/// **A9** — extension: weight-access strategy for Network B on 8 cores.
/// Compares the paper-faithful direct-L2 kernel against a double-buffered
/// DMA tiling estimate (per-layer compute with weights in TCDM, overlapped
/// with the DMA prefetch of the next layer's weights).
///
/// Returns `(direct_cycles, tiled_cycles, per-layer breakdown)` where the
/// breakdown rows are `(layer, compute_cycles, dma_cycles)`.
#[must_use]
pub fn a9_netb_weight_streaming() -> (u64, u64, Vec<(usize, u64, u64)>) {
    use iw_mrwolf::DmaModel;
    let [_, (_, _, fixed_b, qin_b)] = evaluation_nets();
    let direct = run_fixed(FixedTarget::WolfCluster { cores: 8 }, &fixed_b, &qin_b)
        .expect("direct run")
        .cycles;

    let dma = DmaModel::default();
    let offload = iw_mrwolf::ClusterConfig::default().offload_cycles;
    let mut breakdown = Vec::new();
    for (li, layer) in fixed_b.layers.iter().enumerate() {
        // Per-layer compute with weights resident in TCDM: run the layer
        // as a one-layer network (timing is input-independent to first
        // order, so zero activations are fine).
        let single = iw_fann::FixedNet {
            decimal_point: fixed_b.decimal_point,
            num_inputs: layer.in_count,
            layers: vec![layer.clone()],
        };
        let zeros = vec![0i32; layer.in_count];
        let run =
            run_fixed(FixedTarget::WolfCluster { cores: 8 }, &single, &zeros).expect("layer run");
        let compute = run.cycles.saturating_sub(offload);
        let dma_cycles = dma.transfer_cycles(layer.weights.len() * 4);
        breakdown.push((li, compute, dma_cycles));
    }
    // Double buffering: layer l computes while layer l+1's weights stream.
    let mut tiled = offload + breakdown[0].2; // first tile cannot overlap
    for i in 0..breakdown.len() {
        let compute = breakdown[i].1;
        let next_dma = breakdown.get(i + 1).map_or(0, |b| b.2);
        tiled += compute.max(next_dma);
    }
    (direct, tiled, breakdown)
}

/// Per-target cycle breakdown: `(target, total, (class, cycles, share))`.
pub type CycleBreakdown = Vec<(String, u64, Vec<(&'static str, u64, f64)>)>;

/// **A10** — extension: where the cycles go. Per-class cycle breakdown of
/// the Network A kernel on each paper target. Returns
/// `(target name, total cycles, Vec<(class label, cycles, share)>)`.
#[must_use]
pub fn a10_cycle_breakdown() -> CycleBreakdown {
    let [(_, _, fixed, qin), _] = evaluation_nets();
    FixedTarget::paper_targets()
        .into_iter()
        .map(|target| {
            let run = run_fixed(target, &fixed, &qin).expect("target runs");
            let total = run.profile.total().cycles.max(1);
            let rows = run
                .profile
                .breakdown()
                .into_iter()
                .map(|(class, stats)| {
                    (
                        class.label(),
                        stats.cycles,
                        stats.cycles as f64 / total as f64,
                    )
                })
                .collect();
            (target.name(), run.cycles, rows)
        })
        .collect()
}

/// One cluster memory-system diagnostic row (see
/// [`d1_cluster_diagnostics`]). All cycle figures are summed across the
/// active cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterDiag {
    /// Active cores of the run.
    pub cores: usize,
    /// Sum of every core's completion time — the cycle pool the other
    /// fields partition exactly.
    pub core_cycles: u64,
    /// Cycles spent executing instructions (base cost).
    pub busy_cycles: u64,
    /// Cycles lost to TCDM bank conflicts.
    pub tcdm_conflict_stalls: u64,
    /// Cycles lost waiting for the shared L2 port.
    pub l2_port_stalls: u64,
    /// Cycles parked at event-unit barriers.
    pub barrier_wait_cycles: u64,
    /// Barrier episodes executed.
    pub barriers: u64,
}

/// **D1** — diagnostics: where the cluster's core-cycles go on the 8-core
/// kernel. Surfaces the [`iw_mrwolf::ClusterRun`] stall/barrier counters
/// for both networks; the five cycle classes partition the summed
/// per-core cycles exactly (the conservation identity the conformance
/// tests assert).
#[must_use]
pub fn d1_cluster_diagnostics() -> Vec<(String, ClusterDiag)> {
    evaluation_nets()
        .into_iter()
        .map(|(name, _, fixed, qin)| {
            let cores = 8;
            let run =
                run_fixed(FixedTarget::WolfCluster { cores }, &fixed, &qin).expect("cluster runs");
            let stats = run.cluster.expect("cluster stats");
            let diag = ClusterDiag {
                cores,
                core_cycles: stats.per_core_cycles.iter().sum(),
                busy_cycles: stats.busy_cycles,
                tcdm_conflict_stalls: stats.tcdm_conflict_stalls,
                l2_port_stalls: stats.l2_port_stalls,
                barrier_wait_cycles: stats.barrier_wait_cycles,
                barriers: stats.barriers,
            };
            (name, diag)
        })
        .collect()
}

/// The paper-flavoured fleet sweep used by D2 and the `fleet` binary:
/// `devices` simulated bracelets across the three environments × three
/// wearer archetypes × two policies, using the *measured* X2 detection
/// budget (not the published one) so the sweep exercises the full
/// machine-registry → event-engine path.
#[must_use]
pub fn d2_fleet_config(devices: usize, threads: usize, seed: u64) -> FleetConfig {
    let (budget, _) = x2_detection_budget();
    FleetConfig::paper(devices, threads, seed, infiniwolf::detection_costs(&budget))
}

/// **D2** — fleet sweep: per-policy detections/day, brown-out rate and
/// final state of charge across the sweep, plus the X3 reproduction row
/// (the indoor baseline fixed-24 device must deliver the paper's
/// ~24 detections/minute). Returns the raw [`FleetReport`] and the rows.
#[must_use]
pub fn d2_fleet_sweep(devices: usize, threads: usize) -> (FleetReport, Vec<Row>) {
    let mut cfg = d2_fleet_config(devices, threads, SEED);
    // The X3 row below inspects an individual device, so this table (and
    // only this table) opts into sampling the whole small sweep — the
    // default fleet path retains nothing.
    cfg.sample_devices = cfg.devices;
    let report = cfg.run();
    let mut rows = Vec::new();
    for stats in &report.policies {
        rows.push(Row {
            label: format!("{} — detections/day", stats.name),
            ours: stats.detections_per_day,
            paper: None,
            unit: "/day",
        });
        rows.push(Row {
            label: format!("{} — brown-out rate", stats.name),
            ours: stats.brown_out_rate * 100.0,
            paper: None,
            unit: "%",
        });
        rows.push(Row {
            label: format!("{} — mean final SoC", stats.name),
            ours: stats.mean_final_soc * 100.0,
            paper: None,
            unit: "%",
        });
    }
    // X3 through the fleet path: the indoor-day baseline wearer on the
    // fixed 24/min policy sustains the paper's headline rate.
    if let Some(dev) = report
        .devices
        .iter()
        .find(|d| d.env == "indoor-6h" && d.subject == "baseline" && d.policy == "fixed-24")
    {
        rows.push(Row {
            label: "X3 — indoor fixed-24 achieved".into(),
            ours: dev.detections as f64 / dev.days / (24.0 * 60.0),
            paper: Some(24.0),
            unit: "/min",
        });
    }
    (report, rows)
}

/// The D3 fleet configuration: the D2 sweep wired for reliability — BLE
/// result notifications at the measured per-result cost, periodic sync
/// bursts, a third duty-cycled sync policy (results batched and flushed
/// at the burst), and `profile`-intensity fault injection.
#[must_use]
pub fn d3_fleet_config(
    devices: usize,
    threads: usize,
    seed: u64,
    profile: FaultProfile,
) -> FleetConfig {
    let dev = infiniwolf::InfiniWolf::new();
    let mut cfg = d2_fleet_config(devices, threads, seed);
    // A reliability-stress cell: small enough that a dark day can drain
    // it through the LDO cutoff, so the brownout state machine (and the
    // fixed-rate vs energy-aware contrast) is visible within one day.
    cfg.battery = iw_harvest::Battery::new(40.0);
    cfg.notify_j = dev.result_notification_j();
    cfg.sync = Some(BleSync::nrf52(&BleRadio::default(), 300.0, 32));
    cfg.policies.push((
        "duty-300s".into(),
        DetectionPolicy::DutyCycledSync {
            per_minute: 24.0,
            sync_interval_s: 300.0,
        }
        .into(),
    ));
    cfg.faults = profile;
    cfg
}

/// **D3** — reliability sweep: the D3 fleet under each fault profile, in
/// increasing severity. Returns `(profile, report)` pairs; the renderer
/// and the reliability tests read the per-policy uptime / degradation /
/// sync-outcome aggregates out of each report.
#[must_use]
pub fn d3_reliability_sweep(devices: usize, threads: usize) -> Vec<(FaultProfile, FleetReport)> {
    FaultProfile::ALL
        .into_iter()
        .map(|profile| {
            let report = d3_fleet_config(devices, threads, SEED, profile).run();
            (profile, report)
        })
        .collect()
}

/// The D4 fleet configuration: the D3 reliability fleet joined into a
/// network by the [`Scenario::epidemic`] preset — seeded mobility
/// contacts played by per-device BLE scans, weather fronts, regional
/// gateway outages and a scripted infection — compiled once and shared
/// (read-only) by every shard.
#[must_use]
pub fn d4_fleet_config(
    devices: usize,
    threads: usize,
    seed: u64,
    profile: FaultProfile,
) -> FleetConfig {
    let scenario = Scenario::epidemic(devices, seed).compile();
    d3_fleet_config(devices, threads, seed, profile).with_scenario(Arc::new(scenario))
}

/// **D4** — epidemic sweep: the networked D4 fleet under each fault
/// profile, in increasing severity. Returns `(profile, report)` pairs;
/// every report carries [`iw_sim::ScenarioTotals`] (contact counters,
/// scan energy, and the epoch-barrier epidemic outcome).
#[must_use]
pub fn d4_epidemic_sweep(devices: usize, threads: usize) -> Vec<(FaultProfile, FleetReport)> {
    FaultProfile::ALL
        .into_iter()
        .map(|profile| {
            let report = d4_fleet_config(devices, threads, SEED, profile).run();
            (profile, report)
        })
        .collect()
}

/// Checks the daily-intake figure directly (used by the `tables` binary's
/// header for X3).
#[must_use]
pub fn daily_intake_j() -> f64 {
    daily_intake(
        &EnvProfile::paper_indoor_day(),
        &SolarHarvester::infiniwolf(),
        &TegHarvester::infiniwolf(),
    )
    .total_j()
}

/// One candidate of the D5 policy search: a stable display name plus the
/// [`PolicySpec`] it evaluates.
#[derive(Debug, Clone)]
pub struct PolicyCandidate {
    /// Stable candidate name (keys the table, the JSON and the goldens).
    pub name: String,
    /// The policy under evaluation.
    pub spec: PolicySpec,
}

/// The measured outcome of one candidate's deterministic fleet run on
/// the D5 stress cell, plus its Pareto status among the searched set.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// Candidate name.
    pub name: String,
    /// The evaluated spec.
    pub spec: PolicySpec,
    /// Whether the spec uses closed-loop behaviour beyond a legacy policy.
    pub adaptive: bool,
    /// Mean device uptime fraction.
    pub uptime: f64,
    /// Mean detections per simulated day.
    pub detections_per_day: f64,
    /// Mean energy per detection, joules (`inf` if nothing detected).
    pub energy_per_detection_j: f64,
    /// Detections dispatched to the Cortex-M4 by target selection.
    pub target_m4: u64,
    /// Detections dispatched to the Ibex/Wolf controller.
    pub target_ibex: u64,
    /// Detections dispatched to the 8×RI5CY cluster.
    pub target_cluster: u64,
    /// Acquisition windows skipped by fault-aware backoff.
    pub backoff_skips: u64,
    /// Sync intervals stretched during gateway loss.
    pub sync_stretches: u64,
    /// Determinism digest of the candidate's fleet run.
    pub digest: u64,
    /// On the Pareto front of (uptime ↑, detections/day ↑, energy/det ↓).
    pub pareto: bool,
}

/// Per-target-class compute jobs from the kernel registry, in
/// [`iw_sim::TargetClass`] order (M4, Ibex, 8-core cluster): the Network A
/// classification measured on each simulated machine, with the feature
/// stage folded in — exactly how the X2 budget derives the single-target
/// job, once per class.
#[must_use]
pub fn d5_target_jobs() -> [ComputeJob; 3] {
    let [(_, _, fixed, qin), _] = evaluation_nets();
    [
        FixedTarget::CortexM4,
        FixedTarget::WolfIbex,
        FixedTarget::WolfCluster { cores: 8 },
    ]
    .map(|target| {
        let budget = measure_detection_budget(&fixed, &qin, target).expect("target runs");
        ComputeJob::analytic(
            budget.features_s + budget.classification_s,
            budget.features_j + budget.classification_j,
        )
    })
}

/// The D5 candidate set: the three frozen baselines first, then a
/// deterministic grid over the [`RateRule::SocRamp`] knees (with and
/// without the closed-loop behaviours), then a seeded random sweep.
/// Truncating the list always keeps the baselines, so a tiny-grid
/// `--check` run still has its reference policies.
#[must_use]
pub fn d5_candidates(seed: u64) -> Vec<PolicyCandidate> {
    let backoff = FaultBackoff {
        gate_acquisition: true,
        recheck_s: 30.0,
        sync_stretch: 4.0,
    };
    let targets = TargetRule {
        eco_below: 0.35,
        m4_above: 0.75,
        harvest_weight: 50.0,
        queue_cluster: 8,
    };
    let mut out = vec![
        PolicyCandidate {
            name: "fixed-24".into(),
            spec: DetectionPolicy::FixedRate { per_minute: 24.0 }.into(),
        },
        PolicyCandidate {
            name: "aware-24".into(),
            spec: DetectionPolicy::EnergyAware {
                max_per_minute: 24.0,
                min_soc: 0.10,
            }
            .into(),
        },
        PolicyCandidate {
            name: "duty-300s".into(),
            spec: DetectionPolicy::DutyCycledSync {
                per_minute: 24.0,
                sync_interval_s: 300.0,
            }
            .into(),
        },
    ];
    for max_per_minute in [24.0, 36.0] {
        for full_soc in [0.35, 0.60] {
            let rate = RateRule::SocRamp {
                max_per_minute,
                min_soc: 0.10,
                full_soc,
            };
            let stem = format!(
                "ramp{}-f{:02}",
                max_per_minute as u32,
                (full_soc * 100.0) as u32
            );
            out.push(PolicyCandidate {
                name: stem.clone(),
                spec: PolicySpec::new(rate),
            });
            out.push(PolicyCandidate {
                name: format!("{stem}-cl"),
                spec: PolicySpec::new(rate)
                    .with_sync_interval(300.0)
                    .with_backoff(backoff)
                    .with_targets(targets),
            });
        }
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd5);
    for i in 0..4 {
        let min_soc = rng.gen_range(0.03..0.15);
        let rate = RateRule::SocRamp {
            max_per_minute: rng.gen_range(18.0..48.0),
            min_soc,
            full_soc: rng.gen_range(min_soc + 0.10..0.80),
        };
        let spec = PolicySpec::new(rate)
            .with_sync_interval(rng.gen_range(120.0..600.0))
            .with_backoff(FaultBackoff {
                gate_acquisition: rng.gen_range(0..2) == 1,
                recheck_s: rng.gen_range(10.0..60.0),
                sync_stretch: rng.gen_range(2.0..6.0),
            })
            .with_targets(TargetRule {
                eco_below: rng.gen_range(0.2..0.5),
                m4_above: rng.gen_range(0.6..0.9),
                harvest_weight: rng.gen_range(0.0..100.0),
                queue_cluster: rng.gen_range(4..16),
            });
        out.push(PolicyCandidate {
            name: format!("rand-{i}"),
            spec,
        });
    }
    out
}

/// The D5 stress cell for one candidate: the D3 reliability fleet (40 J
/// cell, BLE notify + sync, harsh fault injection) with *every* device
/// on the candidate's policy, and the registry-derived per-target
/// compute jobs available to adaptive target selection.
#[must_use]
pub fn d5_fleet_config(
    devices: usize,
    threads: usize,
    seed: u64,
    candidate: &PolicyCandidate,
    jobs: [ComputeJob; 3],
) -> FleetConfig {
    let mut cfg = d3_fleet_config(devices, threads, seed, FaultProfile::Harsh);
    cfg.policies = vec![(candidate.name.clone(), candidate.spec)];
    cfg.target_jobs = Some(jobs);
    cfg
}

fn dominates(a: &PolicyOutcome, b: &PolicyOutcome) -> bool {
    let geq = a.uptime >= b.uptime
        && a.detections_per_day >= b.detections_per_day
        && a.energy_per_detection_j <= b.energy_per_detection_j;
    let strict = a.uptime > b.uptime
        || a.detections_per_day > b.detections_per_day
        || a.energy_per_detection_j < b.energy_per_detection_j;
    geq && strict
}

/// **D5** — deterministic Pareto policy search: every candidate gets its
/// own fleet run on the harsh 40 J stress cell (same seed, same cell),
/// then the Pareto front of (uptime ↑, detections/day ↑, energy per
/// detection ↓) is marked over the searched set. Outcomes come back in
/// candidate order; each carries its run's determinism digest, so the
/// whole search is bit-reproducible across worker/thread topology.
#[must_use]
pub fn d5_policy_search(
    devices: usize,
    threads: usize,
    seed: u64,
    candidates: &[PolicyCandidate],
) -> Vec<PolicyOutcome> {
    let jobs = d5_target_jobs();
    let mut outcomes: Vec<PolicyOutcome> = candidates
        .iter()
        .map(|candidate| {
            let report = d5_fleet_config(devices, threads, seed, candidate, jobs).run();
            let stats = &report.policies[0];
            PolicyOutcome {
                name: candidate.name.clone(),
                spec: candidate.spec,
                adaptive: candidate.spec.is_adaptive(),
                uptime: stats.mean_uptime,
                detections_per_day: stats.detections_per_day,
                energy_per_detection_j: stats.energy_per_detection_j,
                target_m4: stats.target_m4,
                target_ibex: stats.target_ibex,
                target_cluster: stats.target_cluster,
                backoff_skips: stats.backoff_skips,
                sync_stretches: stats.sync_stretches,
                digest: report.digest,
                pareto: false,
            }
        })
        .collect();
    for i in 0..outcomes.len() {
        outcomes[i].pareto = !outcomes
            .iter()
            .enumerate()
            .any(|(j, other)| j != i && dominates(other, &outcomes[i]));
    }
    outcomes
}

/// Folds the per-candidate run digests into one search digest (FNV-1a
/// over the digests in candidate order) — the single value the `--check`
/// topology rerun compares.
#[must_use]
pub fn d5_search_digest(outcomes: &[PolicyOutcome]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for outcome in outcomes {
        for b in outcome.digest.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_within_8_percent() {
        for row in table1() {
            let r = row.ratio().unwrap();
            assert!((0.92..=1.08).contains(&r), "{row:?}");
        }
    }

    #[test]
    fn table2_rows_within_8_percent() {
        for row in table2() {
            let r = row.ratio().unwrap();
            assert!((0.92..=1.08).contains(&r), "{row:?}");
        }
    }

    #[test]
    fn fig3_matches_exactly_except_memory() {
        for row in fig3() {
            if row.unit == "KiB" {
                assert!((13.0..15.0).contains(&row.ours));
            } else {
                assert_eq!(Some(row.ours), row.paper, "{row:?}");
            }
        }
    }

    #[test]
    fn x3_rows_reproduce() {
        let rows = x3_sustainability();
        assert!(
            (0.95..=1.05).contains(&rows[0].ratio().unwrap()),
            "{rows:?}"
        );
        let rate = rows[2].ours;
        assert!((23.0..27.0).contains(&rate), "rate {rate}");
    }
}
