//! Byte-for-byte regression test for the headline tables.
//!
//! `golden_tables.txt` was captured from the `tables t3 t4 a2 a7 d1`
//! output (the paper tables before the execution layer was refactored
//! onto the `Machine` trait; the D1 cluster-diagnostics block when the
//! tracing layer landed). Any drift in cycles, energy, stall accounting,
//! formatting, or target labels fails here.

#[test]
fn tables_t3_t4_a2_a7_d1_match_frozen_snapshot() {
    let got = format!(
        "{}{}{}{}",
        iw_bench::render_t3t4(),
        iw_bench::render_a2(),
        iw_bench::render_a7(),
        iw_bench::render_d1()
    );
    let want = include_str!("golden_tables.txt");
    assert_eq!(
        got, want,
        "tables output drifted from the pre-refactor snapshot"
    );
}
