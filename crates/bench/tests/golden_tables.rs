//! Byte-for-byte regression test for the headline tables.
//!
//! `golden_tables.txt` was captured from the `tables t3 t4 a2 a7` output
//! before the execution layer was refactored onto the `Machine` trait.
//! Any drift in cycles, energy, formatting, or target labels fails here —
//! the registry-driven path must reproduce the enum-dispatch numbers
//! exactly.

#[test]
fn tables_t3_t4_a2_a7_match_frozen_snapshot() {
    let got = format!(
        "{}{}{}",
        iw_bench::render_t3t4(),
        iw_bench::render_a2(),
        iw_bench::render_a7()
    );
    let want = include_str!("golden_tables.txt");
    assert_eq!(
        got, want,
        "tables output drifted from the pre-refactor snapshot"
    );
}
