//! Byte-for-byte regression test for the D5 Pareto policy search.
//!
//! `golden_d5.txt` was captured from `policy-search --devices 18
//! --candidates 9 --threads 4` under the frozen default seed (2020) when
//! the policy-search subsystem landed. Every candidate run is a pure
//! function of the seed, so any drift in the adaptive policy engine
//! (rate ramps, fault-aware backoff, target selection), the stress-cell
//! wiring, Pareto marking, digest folding, or formatting fails here.

/// The golden cell: the first 9 candidates (baselines + the ramp24/36
/// grid) on 18 devices — small enough for a debug-mode test run, large
/// enough that the searched `ramp36-f35-cl` policy dominates `aware-24`.
fn golden_outcomes(threads: usize) -> Vec<iw_bench::PolicyOutcome> {
    let candidates = iw_bench::d5_candidates(iw_bench::SEED);
    iw_bench::d5_policy_search(18, threads, iw_bench::SEED, &candidates[..9])
}

#[test]
fn d5_policy_search_matches_frozen_snapshot() {
    let outcomes = golden_outcomes(4);
    let got = iw_bench::render_d5_table(18, 4, &outcomes);
    let want = include_str!("golden_d5.txt");
    assert_eq!(
        got, want,
        "D5 policy-search output drifted from the frozen snapshot"
    );
}

#[test]
fn d5_searched_policy_dominates_aware_baseline_on_any_topology() {
    // A different thread count than the snapshot run: outcome equality
    // with the frozen table is already asserted above, so agreement here
    // doubles as the topology-invariance gate for the whole search.
    let outcomes = golden_outcomes(2);
    let got = iw_bench::render_d5_table(18, 4, &outcomes);
    assert_eq!(
        got,
        include_str!("golden_d5.txt"),
        "search results must not depend on thread topology"
    );
    let aware = outcomes
        .iter()
        .find(|o| o.name == "aware-24")
        .expect("aware baseline in search");
    let winner = outcomes
        .iter()
        .find(|o| {
            o.pareto
                && o.adaptive
                && o.uptime >= aware.uptime
                && o.detections_per_day > aware.detections_per_day
        })
        .expect("a Pareto-front adaptive policy must dominate aware-24");
    // The closed-loop machinery visibly fired, not just the rate ramp.
    assert!(winner.target_cluster > 0, "target selection never ran");
    assert!(winner.backoff_skips > 0, "acquisition gating never fired");
    assert!(winner.sync_stretches > 0, "sync stretching never fired");
}
