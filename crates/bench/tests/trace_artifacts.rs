//! End-to-end checks of the observability artifacts: the `trace` binary's
//! flow must emit valid Chrome trace-event JSON with the full per-core
//! cluster timeline, a non-empty hotspot report, and must not perturb the
//! simulation it observes.

use iw_bench::trace_target;
use iw_kernels::{registry, PreparedFixed};
use iw_trace::{validate_json, NoopSink, TraceSink};

fn neta_cluster8() -> iw_bench::TraceArtifacts {
    trace_target("neta", "cl8").expect("neta/cluster8 traces")
}

#[test]
fn cluster_trace_json_is_valid_with_one_track_per_core() {
    let art = neta_cluster8();
    validate_json(&art.chrome_json).expect("well-formed trace JSON");
    for core in 0..8 {
        let name = format!("\"cluster/core{core}\"");
        assert!(art.chrome_json.contains(&name), "missing track {name}");
    }
    // The per-core timeline carries the cycle classes Net A exercises
    // (its weights fit in TCDM, so no L2-port stalls here — see the
    // netb test for those)...
    for span in ["\"busy\"", "\"tcdm-stall\"", "\"barrier-wait\""] {
        assert!(art.chrome_json.contains(span), "missing {span} spans");
    }
    // ...plus SoC energy counters, harvest counters and derived per-layer
    // code tracks from the symbolized PC samples.
    for name in [
        "\"soc_uj\"",
        "\"cluster_uj\"",
        "\"solar_mw\"",
        "\"teg_mw\"",
        "\"soc_pct\"",
        "\"layer0;dot\"",
    ] {
        assert!(art.chrome_json.contains(name), "missing {name}");
    }
}

#[test]
fn folded_stacks_report_symbolized_hotspots() {
    let art = neta_cluster8();
    assert!(!art.folded.trim().is_empty());
    // Every line is "frames count"; the dot-product region dominates.
    let mut first_count = None;
    for line in art.folded.lines() {
        let (frames, count) = line.rsplit_once(' ').expect("folded line shape");
        assert!(frames.starts_with("neta/cluster8;"), "{line}");
        let count: u64 = count.parse().expect("cycle count");
        let first = *first_count.get_or_insert(count);
        assert!(count <= first, "not sorted hottest-first: {line}");
    }
    assert!(
        art.folded.lines().next().expect("rows").contains(";dot "),
        "hottest region should be a dot-product: {}",
        art.folded.lines().next().unwrap()
    );
}

#[test]
fn netb_trace_carries_l2_stall_spans() {
    // Network B spills its weights to L2, so its timeline must show the
    // shared-port contention.
    let art = trace_target("netb", "cl8").expect("netb/cluster8 traces");
    assert!(art.chrome_json.contains("\"l2-stall\""));
}

#[test]
fn m4_trace_has_code_track_and_soc_counter() {
    let art = trace_target("neta", "m4").expect("neta/m4 traces");
    validate_json(&art.chrome_json).expect("well-formed trace JSON");
    assert!(art.chrome_json.contains("\"m4 code\""));
    assert!(art.chrome_json.contains("\"soc_uj\""));
    assert!(art.folded.contains("layer0;dot"));
}

#[test]
fn recording_does_not_perturb_the_run() {
    // The iss_bench measurement path is PreparedFixed::run with the
    // NoopSink monomorphized in; the sink must be compile-time disabled
    // and the recorded run observationally identical.
    const { assert!(!NoopSink::ENABLED) };
    let [(_, _, fixed, qin), _] = iw_bench::evaluation_nets();
    let entry = registry()
        .into_iter()
        .find(|e| e.id == "cluster8")
        .expect("cluster8 registered");
    let prep = PreparedFixed::on(&*entry.machine(), &fixed, &qin).expect("deploys");
    let plain = prep.run().expect("runs");
    let art = neta_cluster8();
    assert_eq!(art.run.cycles, plain.cycles);
    assert_eq!(art.run.instructions, plain.instructions);
    assert_eq!(art.run.outputs, plain.outputs);
    assert_eq!(art.run.cluster, plain.cluster);
}
