//! Byte-for-byte regression test for the Prometheus metrics exposition.
//!
//! `golden_metrics.prom` was captured from the fleet metrics snapshot
//! of a 27-device D3 harsh-profile run under the frozen default seed
//! (2020). The snapshot is a pure, topology-invariant function of the
//! seed, so any drift in metric names, label sets, histogram bucket
//! boundaries, counter folding, or the exposition renderer fails here.
//! Regenerate with `UPDATE_GOLDEN=1 cargo test -p iw-bench --test
//! golden_metrics` after an intentional change.

use iw_sim::{fleet_snapshot, FaultProfile};

fn exposition() -> String {
    let report = iw_bench::d3_fleet_config(27, 4, iw_bench::SEED, FaultProfile::Harsh).run();
    fleet_snapshot(&report).to_prometheus()
}

#[test]
fn prometheus_exposition_matches_frozen_snapshot() {
    let got = exposition();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_metrics.prom");
        std::fs::write(path, &got).expect("write golden file");
        return;
    }
    let want = include_str!("golden_metrics.prom");
    assert_eq!(
        got, want,
        "Prometheus exposition drifted from the frozen snapshot"
    );
}

#[test]
fn exposition_carries_the_full_metric_surface() {
    let got = exposition();
    // Scalar families, per-kind fault counters, per-policy gauges and
    // cumulative histogram buckets must all be present with stable
    // names — dashboards key on these.
    for needle in [
        "# TYPE fleet_devices counter",
        "# TYPE fleet_device_uptime_ppm histogram",
        "fleet_fault_episodes_total{kind=\"ble-loss\"}",
        "fleet_policy_mean_uptime{policy=\"aware-24\"}",
        "fleet_sync_attempts_bucket{le=\"+Inf\"}",
        "fleet_sync_attempts_sum",
        "fleet_sync_attempts_count",
        "fleet_brownouts_total",
    ] {
        assert!(got.contains(needle), "missing `{needle}` in:\n{got}");
    }
}
