//! Byte-for-byte regression test for the D4 epidemic scenario sweep.
//!
//! `golden_d4.txt` was captured from `tables d4` under the frozen
//! default seed (2020) when the networked-scenario engine landed. The
//! sweep is a pure function of the seed — mobility walks, contact
//! windows, weather fronts, gateway outages, BLE scan energy and the
//! epoch-barrier epidemic fold included — so any drift in the scenario
//! compiler, the scan component, edge aggregation, the infection hash
//! draws, digest folding, or formatting fails here. Regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p iw-bench --test golden_d4` after an
//! intentional change.

#[test]
fn d4_epidemic_sweep_matches_frozen_snapshot() {
    let got = iw_bench::render_d4(27, 4);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_d4.txt");
        std::fs::write(path, &got).expect("write golden file");
        return;
    }
    let want = include_str!("golden_d4.txt");
    assert_eq!(
        got, want,
        "D4 epidemic output drifted from the frozen snapshot"
    );
}

#[test]
fn d4_epidemic_reaches_beyond_its_seeds_and_gates_on_scans() {
    let sweep = iw_bench::d4_epidemic_sweep(27, 2);
    for (profile, report) in &sweep {
        let scn = report
            .scenario
            .as_ref()
            .expect("D4 reports carry scenario totals");
        assert!(
            scn.contacts_observed > 0,
            "{}: no contacts observed",
            profile.label()
        );
        assert_eq!(scn.edge_count, scn.contacts_observed);
        assert!(scn.scan_energy_j > 0.0);
        let epi = scn.epidemic.as_ref().expect("epidemic outcome");
        assert_eq!(epi.seeded, scn.seeded_devices);
        assert!(epi.infected >= epi.seeded);
        assert!(
            epi.infected > epi.seeded,
            "{}: infection never crossed a contact edge",
            profile.label()
        );
    }
    // Harsher faults can only lose contacts (brownouts during scan
    // windows), never invent them.
    let observed: Vec<u64> = sweep
        .iter()
        .map(|(_, r)| r.scenario.as_ref().expect("totals").contacts_observed)
        .collect();
    assert!(
        observed.windows(2).all(|w| w[1] <= w[0]),
        "observed contacts should be non-increasing with severity: {observed:?}"
    );
}
