//! Byte-for-byte regression test for the D3 reliability sweep.
//!
//! `golden_d3.txt` was captured from `tables d3` under the frozen
//! default seed (2020) when the fault-injection subsystem landed. The
//! sweep is a pure function of the seed — fault plans, BLE loss draws,
//! gauge noise and the brownout state machine included — so any drift in
//! fault arrival, retry/backoff behaviour, reliability accounting,
//! digest folding, or formatting fails here.

#[test]
fn d3_reliability_sweep_matches_frozen_snapshot() {
    let got = iw_bench::render_d3(27, 4);
    let want = include_str!("golden_d3.txt");
    assert_eq!(
        got, want,
        "D3 reliability output drifted from the frozen snapshot"
    );
}

#[test]
fn d3_harsh_degrades_but_never_violates_conservation() {
    let sweep = iw_bench::d3_reliability_sweep(27, 2);
    let harsh = &sweep
        .iter()
        .find(|(p, _)| p.label() == "harsh")
        .expect("harsh profile in sweep")
        .1;
    assert!(harsh.mean_uptime < 1.0, "harsh must cost uptime");
    assert!(harsh.mean_uptime > 0.5, "harsh must not kill the fleet");
    assert!(harsh.reliability.degraded_windows > 0);
    assert!(harsh.reliability.sync_dropped > 0);
    assert!(harsh.max_conservation_j < 1e-6, "energy books must balance");
    // The energy-aware policy throttles above the LDO cutoff, so it keeps
    // full uptime where the fixed-rate policies brown out.
    let aware = harsh
        .policies
        .iter()
        .find(|p| p.name == "aware-24")
        .expect("aware policy");
    let fixed = harsh
        .policies
        .iter()
        .find(|p| p.name == "fixed-24")
        .expect("fixed policy");
    assert!(aware.mean_uptime > fixed.mean_uptime);
}
