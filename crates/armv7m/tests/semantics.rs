//! Semantic tests for the Cortex-M4F model: condition codes against
//! reference integer comparisons, DSP ops, and VFP arithmetic against
//! Rust's f32.

use iw_armv7m::{asm::ThumbAsm, Cond, CortexM4, CortexM4Timing, DpOp, ThumbInstr, R, S};
use iw_rv32::Ram;
use proptest::prelude::*;

fn exec(asm: &ThumbAsm) -> CortexM4 {
    let program = asm.finish().unwrap();
    let mut cpu = CortexM4::new();
    let mut ram = Ram::new(0, 1024);
    cpu.run(&program, &mut ram, &CortexM4Timing::default(), 100_000)
        .unwrap();
    cpu
}

/// Returns 1 if the branch on `cond` after `cmp a, b` is taken.
fn branch_taken(a: i32, b: i32, cond: Cond) -> bool {
    let mut asm = ThumbAsm::new();
    asm.li(R::R0, a);
    asm.li(R::R1, b);
    asm.cmp(R::R0, R::R1);
    let taken = asm.new_label();
    asm.b_to(cond, taken);
    asm.li(R::R2, 0);
    asm.bkpt();
    asm.bind(taken);
    asm.li(R::R2, 1);
    asm.bkpt();
    exec(&asm).reg(R::R2) == 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn signed_condition_codes(a in any::<i32>(), b in any::<i32>()) {
        prop_assert_eq!(branch_taken(a, b, Cond::Eq), a == b);
        prop_assert_eq!(branch_taken(a, b, Cond::Ne), a != b);
        prop_assert_eq!(branch_taken(a, b, Cond::Lt), a < b);
        prop_assert_eq!(branch_taken(a, b, Cond::Ge), a >= b);
        prop_assert_eq!(branch_taken(a, b, Cond::Gt), a > b);
        prop_assert_eq!(branch_taken(a, b, Cond::Le), a <= b);
    }

    #[test]
    fn unsigned_condition_codes(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(branch_taken(a as i32, b as i32, Cond::Hs), a >= b);
        prop_assert_eq!(branch_taken(a as i32, b as i32, Cond::Lo), a < b);
    }

    #[test]
    fn dp_ops_match_reference(a in any::<u32>(), b in any::<u32>()) {
        let cases: Vec<(DpOp, u32)> = vec![
            (DpOp::Add, a.wrapping_add(b)),
            (DpOp::Sub, a.wrapping_sub(b)),
            (DpOp::And, a & b),
            (DpOp::Orr, a | b),
            (DpOp::Eor, a ^ b),
            (DpOp::Mul, a.wrapping_mul(b)),
        ];
        for (op, expected) in cases {
            let mut asm = ThumbAsm::new();
            asm.li(R::R0, a as i32);
            asm.li(R::R1, b as i32);
            asm.dp(op, R::R2, R::R0, R::R1);
            asm.bkpt();
            prop_assert_eq!(exec(&asm).reg(R::R2), expected, "op {:?}", op);
        }
    }

    #[test]
    fn vfp_arithmetic_matches_f32(a in -1e6f32..1e6, b in -1e6f32..1e6) {
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, a.to_bits() as i32);
        asm.li(R::R1, b.to_bits() as i32);
        asm.emit(ThumbInstr::VmovToS { sd: S::new(0), rt: R::R0 });
        asm.emit(ThumbInstr::VmovToS { sd: S::new(1), rt: R::R1 });
        asm.emit(ThumbInstr::Vadd { sd: S::new(2), sn: S::new(0), sm: S::new(1) });
        asm.emit(ThumbInstr::Vsub { sd: S::new(3), sn: S::new(0), sm: S::new(1) });
        asm.emit(ThumbInstr::Vmul { sd: S::new(4), sn: S::new(0), sm: S::new(1) });
        asm.emit(ThumbInstr::Vdiv { sd: S::new(5), sn: S::new(0), sm: S::new(1) });
        asm.bkpt();
        let cpu = exec(&asm);
        prop_assert_eq!(cpu.sreg(S::new(2)).to_bits(), (a + b).to_bits());
        prop_assert_eq!(cpu.sreg(S::new(3)).to_bits(), (a - b).to_bits());
        prop_assert_eq!(cpu.sreg(S::new(4)).to_bits(), (a * b).to_bits());
        prop_assert_eq!(cpu.sreg(S::new(5)).to_bits(), (a / b).to_bits());
    }

    #[test]
    fn smlad_matches_reference(a in any::<u32>(), b in any::<u32>(), acc in any::<i32>()) {
        let p0 = i32::from(a as u16 as i16) * i32::from(b as u16 as i16);
        let p1 = i32::from((a >> 16) as u16 as i16) * i32::from((b >> 16) as u16 as i16);
        let expected = acc.wrapping_add(p0.wrapping_add(p1)) as u32;
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, a as i32);
        asm.li(R::R1, b as i32);
        asm.li(R::R2, acc);
        asm.emit(ThumbInstr::Smlad { rd: R::R3, rn: R::R0, rm: R::R1, ra: R::R2 });
        asm.bkpt();
        prop_assert_eq!(exec(&asm).reg(R::R3), expected);
    }

    #[test]
    fn smull_matches_reference(a in any::<i32>(), b in any::<i32>()) {
        let p = i64::from(a) * i64::from(b);
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, a);
        asm.li(R::R1, b);
        asm.emit(ThumbInstr::Smull { rdlo: R::R2, rdhi: R::R3, rn: R::R0, rm: R::R1 });
        asm.bkpt();
        let cpu = exec(&asm);
        prop_assert_eq!(cpu.reg(R::R2), p as u32);
        prop_assert_eq!(cpu.reg(R::R3), (p >> 32) as u32);
    }
}

#[test]
fn vcmp_handles_nan_as_unordered() {
    // NaN compares: Gt must NOT be taken, Ne-style unordered handling.
    let mut asm = ThumbAsm::new();
    asm.li(R::R0, f32::NAN.to_bits() as i32);
    asm.li(R::R1, 1.0f32.to_bits() as i32);
    asm.emit(ThumbInstr::VmovToS {
        sd: S::new(0),
        rt: R::R0,
    });
    asm.emit(ThumbInstr::VmovToS {
        sd: S::new(1),
        rt: R::R1,
    });
    asm.emit(ThumbInstr::Vcmp {
        sn: S::new(0),
        sm: S::new(1),
    });
    asm.emit(ThumbInstr::Vmrs);
    let gt = asm.new_label();
    asm.b_to(Cond::Gt, gt);
    asm.li(R::R5, 0);
    asm.bkpt();
    asm.bind(gt);
    asm.li(R::R5, 1);
    asm.bkpt();
    let cpu = exec(&asm);
    // ARM unordered sets C and V: Gt (=!Z && N==V) evaluates false? With
    // N=0, Z=0, C=1, V=1: N != V so Gt is false.
    assert_eq!(cpu.reg(R::R5), 0);
}

#[test]
fn mi_pl_follow_sign() {
    let mut asm = ThumbAsm::new();
    asm.li(R::R0, -5);
    asm.cmp_imm(R::R0, 0);
    let neg = asm.new_label();
    asm.b_to(Cond::Mi, neg);
    asm.li(R::R1, 0);
    asm.bkpt();
    asm.bind(neg);
    asm.li(R::R1, 1);
    asm.bkpt();
    assert_eq!(exec(&asm).reg(R::R1), 1);
}
