//! Variable-length halfword encoding of [`ThumbInstr`] programs, and the
//! whole-program pre-decoder.
//!
//! Real Thumb-2 code is a halfword stream where instructions are one or
//! two halfwords long and must be decoded before execution. This module
//! gives the model the same *shape* — [`encode_program`] lowers a
//! `&[ThumbInstr]` to `Vec<u16>` with 1- or 2-halfword instructions and
//! pc-relative branch deltas — without claiming ARM bit-exactness (the
//! field layout is our own; see the opcode table in the source).
//!
//! Two execution paths consume it:
//!
//! * [`CortexM4::run_code`](crate::CortexM4::run_code) decodes every
//!   *dynamic* instruction — the uncached baseline, paying the
//!   variable-length decode on each step.
//! * [`DecodedProgram::decode`] decodes every *static* instruction once,
//!   turning halfword branch targets back into instruction indices. The
//!   result runs on the fast [`CortexM4::run`](crate::CortexM4::run)
//!   path. On the nRF52832, code executes from flash, which data stores
//!   cannot touch, so this pre-decoded program never needs invalidation —
//!   the whole-program decode *is* the M4's decode cache.
//!
//! Encoding layout: `hw1 = [wide:1][opcode:6][a:5][b:4]`, plus a 16-bit
//! payload halfword when `wide` is set. Branches store a signed halfword
//! delta relative to the branch's own first halfword.

use core::fmt;

use crate::instr::{AddrMode, Cond, DpOp, LsWidth, ThumbInstr, R, S};

// Narrow (single-halfword) opcodes.
const OP_NOP: u16 = 0;
const OP_BKPT: u16 = 1;
const OP_MOV_REG: u16 = 2;
const OP_CMP: u16 = 3;
const OP_VMRS: u16 = 4;
const OP_VMOV_TO_S: u16 = 5;
const OP_VMOV_FROM_S: u16 = 6;
// Wide (two-halfword) opcodes.
const OP_MOVW: u16 = 16;
const OP_MOVT: u16 = 17;
const OP_DP: u16 = 18;
const OP_ADD_IMM: u16 = 19;
const OP_SUBS_IMM: u16 = 20;
const OP_CMP_IMM: u16 = 21;
const OP_LSL_IMM: u16 = 22;
const OP_LSR_IMM: u16 = 23;
const OP_ASR_IMM: u16 = 24;
const OP_MLA: u16 = 25;
const OP_MLS: u16 = 26;
const OP_SMLAD: u16 = 27;
const OP_SMULL: u16 = 28;
const OP_SMLAL: u16 = 29;
const OP_SSAT: u16 = 30;
const OP_LDR: u16 = 31;
const OP_STR: u16 = 32;
const OP_B: u16 = 33;
const OP_VLDR: u16 = 34;
const OP_VLDR_POST: u16 = 35;
const OP_VSTR: u16 = 36;
const OP_VMOV_F: u16 = 37;
const OP_VADD: u16 = 38;
const OP_VSUB: u16 = 39;
const OP_VMUL: u16 = 40;
const OP_VMLA: u16 = 41;
const OP_VDIV: u16 = 42;
const OP_VABS: u16 = 43;
const OP_VNEG: u16 = 44;
const OP_VCVT_F32_S32: u16 = 45;
const OP_VCVT_S32_F32: u16 = 46;
const OP_VCMP: u16 = 47;

/// Error raised while lowering a program to halfwords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate does not fit its encoding field.
    Imm {
        /// Index of the offending instruction.
        index: usize,
    },
    /// A load/store offset does not fit its 12-bit field.
    Offset {
        /// Index of the offending instruction.
        index: usize,
    },
    /// A branch target is outside the program or its delta overflows.
    Branch {
        /// Index of the offending instruction.
        index: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Imm { index } => {
                write!(f, "immediate out of encodable range at instruction {index}")
            }
            EncodeError::Offset { index } => {
                write!(
                    f,
                    "memory offset out of encodable range at instruction {index}"
                )
            }
            EncodeError::Branch { index } => {
                write!(f, "branch out of encodable range at instruction {index}")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error raised while decoding halfword code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeError {
    /// Unassigned opcode.
    Opcode {
        /// Halfword offset of the instruction.
        hw_pc: usize,
        /// The offending first halfword.
        hw: u16,
    },
    /// A wide instruction starts on the last halfword.
    Truncated {
        /// Halfword offset of the instruction.
        hw_pc: usize,
    },
    /// A field holds an unrepresentable value (register, condition,
    /// shift amount or saturation width out of range).
    Field {
        /// Halfword offset of the instruction.
        hw_pc: usize,
    },
    /// A branch lands outside the code or in the middle of a wide
    /// instruction (whole-program decode only).
    BranchTarget {
        /// Halfword offset of the branch.
        hw_pc: usize,
    },
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::Opcode { hw_pc, hw } => {
                write!(f, "unknown opcode in halfword {hw:#06x} at offset {hw_pc}")
            }
            CodeError::Truncated { hw_pc } => {
                write!(f, "wide instruction truncated at offset {hw_pc}")
            }
            CodeError::Field { hw_pc } => {
                write!(f, "field out of range at offset {hw_pc}")
            }
            CodeError::BranchTarget { hw_pc } => {
                write!(f, "branch at offset {hw_pc} lands inside an instruction")
            }
        }
    }
}

impl std::error::Error for CodeError {}

fn dp_index(op: DpOp) -> u16 {
    match op {
        DpOp::Add => 0,
        DpOp::Sub => 1,
        DpOp::And => 2,
        DpOp::Orr => 3,
        DpOp::Eor => 4,
        DpOp::Lsl => 5,
        DpOp::Lsr => 6,
        DpOp::Asr => 7,
        DpOp::Mul => 8,
        DpOp::Sdiv => 9,
        DpOp::Udiv => 10,
    }
}

fn cond_index(cond: Cond) -> u16 {
    match cond {
        Cond::Al => 0,
        Cond::Eq => 1,
        Cond::Ne => 2,
        Cond::Lt => 3,
        Cond::Ge => 4,
        Cond::Gt => 5,
        Cond::Le => 6,
        Cond::Hs => 7,
        Cond::Lo => 8,
        Cond::Mi => 9,
        Cond::Pl => 10,
    }
}

fn width_index(width: LsWidth) -> u16 {
    match width {
        LsWidth::B => 0,
        LsWidth::Sb => 1,
        LsWidth::H => 2,
        LsWidth::Sh => 3,
        LsWidth::W => 4,
    }
}

/// Halfword length of one instruction in the encoding (1 or 2).
#[must_use]
pub fn instr_len(instr: &ThumbInstr) -> usize {
    match instr {
        ThumbInstr::Nop
        | ThumbInstr::Bkpt
        | ThumbInstr::MovReg { .. }
        | ThumbInstr::Cmp { .. }
        | ThumbInstr::Vmrs
        | ThumbInstr::VmovToS { .. }
        | ThumbInstr::VmovFromS { .. } => 1,
        _ => 2,
    }
}

fn hw1(wide: bool, opcode: u16, a: u16, b: u16) -> u16 {
    debug_assert!(opcode < 64 && a < 32 && b < 16);
    (u16::from(wide) << 15) | (opcode << 9) | (a << 4) | b
}

fn imm16(imm: i32, index: usize) -> Result<u16, EncodeError> {
    i16::try_from(imm)
        .map(|v| v as u16)
        .map_err(|_| EncodeError::Imm { index })
}

/// Lowers a program to halfword code.
///
/// Branch targets (instruction indices, one past the end allowed) become
/// signed halfword deltas; a two-pass assembly resolves forward branches.
///
/// # Errors
///
/// See [`EncodeError`].
pub fn encode_program(program: &[ThumbInstr]) -> Result<Vec<u16>, EncodeError> {
    let mut offsets = Vec::with_capacity(program.len() + 1);
    let mut off = 0usize;
    for instr in program {
        offsets.push(off);
        off += instr_len(instr);
    }
    offsets.push(off);

    let mut code = Vec::with_capacity(off);
    for (index, instr) in program.iter().enumerate() {
        encode_one(*instr, index, &offsets, &mut code)?;
    }
    Ok(code)
}

#[allow(clippy::too_many_lines)]
fn encode_one(
    instr: ThumbInstr,
    index: usize,
    offsets: &[usize],
    code: &mut Vec<u16>,
) -> Result<(), EncodeError> {
    let r = |reg: R| u16::from(reg.index());
    let s = |reg: S| u16::from(reg.index());
    let narrow = |code: &mut Vec<u16>, opcode, a, b| code.push(hw1(false, opcode, a, b));
    let wide = |code: &mut Vec<u16>, opcode, a, b, payload| {
        code.push(hw1(true, opcode, a, b));
        code.push(payload);
    };
    match instr {
        ThumbInstr::Nop => narrow(code, OP_NOP, 0, 0),
        ThumbInstr::Bkpt => narrow(code, OP_BKPT, 0, 0),
        ThumbInstr::MovReg { rd, rm } => narrow(code, OP_MOV_REG, r(rd), r(rm)),
        ThumbInstr::Cmp { rn, rm } => narrow(code, OP_CMP, r(rn), r(rm)),
        ThumbInstr::Vmrs => narrow(code, OP_VMRS, 0, 0),
        ThumbInstr::VmovToS { sd, rt } => narrow(code, OP_VMOV_TO_S, s(sd), r(rt)),
        ThumbInstr::VmovFromS { rt, sm } => narrow(code, OP_VMOV_FROM_S, s(sm), r(rt)),
        ThumbInstr::Movw { rd, imm } => wide(code, OP_MOVW, r(rd), 0, imm),
        ThumbInstr::Movt { rd, imm } => wide(code, OP_MOVT, r(rd), 0, imm),
        ThumbInstr::Dp { op, rd, rn, rm } => {
            wide(code, OP_DP, r(rd), dp_index(op), r(rn) | (r(rm) << 4));
        }
        ThumbInstr::AddImm { rd, rn, imm } => {
            wide(code, OP_ADD_IMM, r(rd), r(rn), imm16(imm, index)?);
        }
        ThumbInstr::SubsImm { rd, rn, imm } => {
            wide(code, OP_SUBS_IMM, r(rd), r(rn), imm16(imm, index)?);
        }
        ThumbInstr::CmpImm { rn, imm } => wide(code, OP_CMP_IMM, r(rn), 0, imm16(imm, index)?),
        ThumbInstr::LslImm { rd, rm, shamt }
        | ThumbInstr::LsrImm { rd, rm, shamt }
        | ThumbInstr::AsrImm { rd, rm, shamt } => {
            if shamt > 31 {
                return Err(EncodeError::Imm { index });
            }
            let opcode = match instr {
                ThumbInstr::LslImm { .. } => OP_LSL_IMM,
                ThumbInstr::LsrImm { .. } => OP_LSR_IMM,
                _ => OP_ASR_IMM,
            };
            wide(code, opcode, r(rd), r(rm), shamt.into());
        }
        ThumbInstr::Mla { rd, rn, rm, ra } => {
            wide(code, OP_MLA, r(rd), 0, r(rn) | (r(rm) << 4) | (r(ra) << 8));
        }
        ThumbInstr::Mls { rd, rn, rm, ra } => {
            wide(code, OP_MLS, r(rd), 0, r(rn) | (r(rm) << 4) | (r(ra) << 8));
        }
        ThumbInstr::Smlad { rd, rn, rm, ra } => {
            wide(
                code,
                OP_SMLAD,
                r(rd),
                0,
                r(rn) | (r(rm) << 4) | (r(ra) << 8),
            );
        }
        ThumbInstr::Smull { rdlo, rdhi, rn, rm } => {
            wide(code, OP_SMULL, r(rdlo), r(rdhi), r(rn) | (r(rm) << 4));
        }
        ThumbInstr::Smlal { rdlo, rdhi, rn, rm } => {
            wide(code, OP_SMLAL, r(rdlo), r(rdhi), r(rn) | (r(rm) << 4));
        }
        ThumbInstr::Ssat { rd, sat, rn } => {
            if sat == 0 || sat > 31 {
                return Err(EncodeError::Imm { index });
            }
            wide(code, OP_SSAT, r(rd), r(rn), sat.into());
        }
        ThumbInstr::Ldr {
            width,
            rt,
            rn,
            offset,
            mode,
        }
        | ThumbInstr::Str {
            width,
            rt,
            rn,
            offset,
            mode,
        } => {
            if !(-2048..=2047).contains(&offset) {
                return Err(EncodeError::Offset { index });
            }
            let opcode = if matches!(instr, ThumbInstr::Ldr { .. }) {
                OP_LDR
            } else {
                OP_STR
            };
            let mode_bit = u16::from(mode == AddrMode::PostInc);
            let payload = (mode_bit << 15) | (width_index(width) << 12) | (offset as u16 & 0xfff);
            wide(code, opcode, r(rt), r(rn), payload);
        }
        ThumbInstr::B { cond, target } => {
            if target >= offsets.len() {
                return Err(EncodeError::Branch { index });
            }
            let delta = offsets[target] as i64 - offsets[index] as i64;
            let delta = i16::try_from(delta).map_err(|_| EncodeError::Branch { index })?;
            wide(code, OP_B, cond_index(cond), 0, delta as u16);
        }
        ThumbInstr::Vldr { sd, rn, offset }
        | ThumbInstr::VldrPost { sd, rn, offset }
        | ThumbInstr::Vstr { sd, rn, offset } => {
            let opcode = match instr {
                ThumbInstr::Vldr { .. } => OP_VLDR,
                ThumbInstr::VldrPost { .. } => OP_VLDR_POST,
                _ => OP_VSTR,
            };
            wide(code, opcode, s(sd), r(rn), imm16(offset, index)?);
        }
        ThumbInstr::VmovF { sd, sm } => wide(code, OP_VMOV_F, s(sd), 0, s(sm)),
        ThumbInstr::Vadd { sd, sn, sm }
        | ThumbInstr::Vsub { sd, sn, sm }
        | ThumbInstr::Vmul { sd, sn, sm }
        | ThumbInstr::Vmla { sd, sn, sm }
        | ThumbInstr::Vdiv { sd, sn, sm } => {
            let opcode = match instr {
                ThumbInstr::Vadd { .. } => OP_VADD,
                ThumbInstr::Vsub { .. } => OP_VSUB,
                ThumbInstr::Vmul { .. } => OP_VMUL,
                ThumbInstr::Vmla { .. } => OP_VMLA,
                _ => OP_VDIV,
            };
            wide(code, opcode, s(sd), 0, s(sn) | (s(sm) << 8));
        }
        ThumbInstr::Vabs { sd, sm }
        | ThumbInstr::Vneg { sd, sm }
        | ThumbInstr::VcvtF32S32 { sd, sm }
        | ThumbInstr::VcvtS32F32 { sd, sm } => {
            let opcode = match instr {
                ThumbInstr::Vabs { .. } => OP_VABS,
                ThumbInstr::Vneg { .. } => OP_VNEG,
                ThumbInstr::VcvtF32S32 { .. } => OP_VCVT_F32_S32,
                _ => OP_VCVT_S32_F32,
            };
            wide(code, opcode, s(sd), 0, s(sm));
        }
        ThumbInstr::Vcmp { sn, sm } => wide(code, OP_VCMP, s(sn), 0, s(sm)),
    }
    Ok(())
}

/// Decodes the instruction starting at halfword `hw_pc`.
///
/// Returns the instruction and its halfword length. Branch targets come
/// back as *absolute halfword offsets* (the caller's pc unit on the
/// per-halfword execution path); [`DecodedProgram::decode`] converts them
/// to instruction indices instead.
///
/// # Errors
///
/// See [`CodeError`].
#[allow(clippy::too_many_lines, clippy::missing_panics_doc)]
pub fn decode_at(code: &[u16], hw_pc: usize) -> Result<(ThumbInstr, usize), CodeError> {
    let hw = *code.get(hw_pc).ok_or(CodeError::Truncated { hw_pc })?;
    let wide = hw & 0x8000 != 0;
    let opcode = (hw >> 9) & 0x3f;
    let a = (hw >> 4) & 0x1f;
    let b = hw & 0xf;
    let payload = if wide {
        Some(*code.get(hw_pc + 1).ok_or(CodeError::Truncated { hw_pc })?)
    } else {
        None
    };
    let field = CodeError::Field { hw_pc };
    let r = |v: u16| {
        if v < 15 {
            Ok(R::new(v as u8))
        } else {
            Err(field)
        }
    };
    let s = |v: u16| {
        if v < 32 {
            Ok(S::new(v as u8))
        } else {
            Err(field)
        }
    };
    let dp_op = |v: u16| {
        Ok(match v {
            0 => DpOp::Add,
            1 => DpOp::Sub,
            2 => DpOp::And,
            3 => DpOp::Orr,
            4 => DpOp::Eor,
            5 => DpOp::Lsl,
            6 => DpOp::Lsr,
            7 => DpOp::Asr,
            8 => DpOp::Mul,
            9 => DpOp::Sdiv,
            10 => DpOp::Udiv,
            _ => return Err(field),
        })
    };
    let cond = |v: u16| {
        Ok(match v {
            0 => Cond::Al,
            1 => Cond::Eq,
            2 => Cond::Ne,
            3 => Cond::Lt,
            4 => Cond::Ge,
            5 => Cond::Gt,
            6 => Cond::Le,
            7 => Cond::Hs,
            8 => Cond::Lo,
            9 => Cond::Mi,
            10 => Cond::Pl,
            _ => return Err(field),
        })
    };
    let width = |v: u16| {
        Ok(match v {
            0 => LsWidth::B,
            1 => LsWidth::Sb,
            2 => LsWidth::H,
            3 => LsWidth::Sh,
            4 => LsWidth::W,
            _ => return Err(field),
        })
    };

    let instr = match (wide, opcode) {
        (false, OP_NOP) => ThumbInstr::Nop,
        (false, OP_BKPT) => ThumbInstr::Bkpt,
        (false, OP_MOV_REG) => ThumbInstr::MovReg {
            rd: r(a)?,
            rm: r(b)?,
        },
        (false, OP_CMP) => ThumbInstr::Cmp {
            rn: r(a)?,
            rm: r(b)?,
        },
        (false, OP_VMRS) => ThumbInstr::Vmrs,
        (false, OP_VMOV_TO_S) => ThumbInstr::VmovToS {
            sd: s(a)?,
            rt: r(b)?,
        },
        (false, OP_VMOV_FROM_S) => ThumbInstr::VmovFromS {
            rt: r(b)?,
            sm: s(a)?,
        },
        (true, _) => {
            let p = payload.expect("wide instructions carry a payload");
            match opcode {
                OP_MOVW => ThumbInstr::Movw { rd: r(a)?, imm: p },
                OP_MOVT => ThumbInstr::Movt { rd: r(a)?, imm: p },
                OP_DP => ThumbInstr::Dp {
                    op: dp_op(b)?,
                    rd: r(a)?,
                    rn: r(p & 0xf)?,
                    rm: r((p >> 4) & 0xf)?,
                },
                OP_ADD_IMM => ThumbInstr::AddImm {
                    rd: r(a)?,
                    rn: r(b)?,
                    imm: i32::from(p as i16),
                },
                OP_SUBS_IMM => ThumbInstr::SubsImm {
                    rd: r(a)?,
                    rn: r(b)?,
                    imm: i32::from(p as i16),
                },
                OP_CMP_IMM => ThumbInstr::CmpImm {
                    rn: r(a)?,
                    imm: i32::from(p as i16),
                },
                OP_LSL_IMM | OP_LSR_IMM | OP_ASR_IMM => {
                    if p > 31 {
                        return Err(field);
                    }
                    let (rd, rm, shamt) = (r(a)?, r(b)?, p as u8);
                    match opcode {
                        OP_LSL_IMM => ThumbInstr::LslImm { rd, rm, shamt },
                        OP_LSR_IMM => ThumbInstr::LsrImm { rd, rm, shamt },
                        _ => ThumbInstr::AsrImm { rd, rm, shamt },
                    }
                }
                OP_MLA | OP_MLS | OP_SMLAD => {
                    let (rd, rn, rm, ra) =
                        (r(a)?, r(p & 0xf)?, r((p >> 4) & 0xf)?, r((p >> 8) & 0xf)?);
                    match opcode {
                        OP_MLA => ThumbInstr::Mla { rd, rn, rm, ra },
                        OP_MLS => ThumbInstr::Mls { rd, rn, rm, ra },
                        _ => ThumbInstr::Smlad { rd, rn, rm, ra },
                    }
                }
                OP_SMULL | OP_SMLAL => {
                    let (rdlo, rdhi, rn, rm) = (r(a)?, r(b)?, r(p & 0xf)?, r((p >> 4) & 0xf)?);
                    if opcode == OP_SMULL {
                        ThumbInstr::Smull { rdlo, rdhi, rn, rm }
                    } else {
                        ThumbInstr::Smlal { rdlo, rdhi, rn, rm }
                    }
                }
                OP_SSAT => {
                    if p == 0 || p > 31 {
                        return Err(field);
                    }
                    ThumbInstr::Ssat {
                        rd: r(a)?,
                        sat: p as u8,
                        rn: r(b)?,
                    }
                }
                OP_LDR | OP_STR => {
                    let mode = if p & 0x8000 != 0 {
                        AddrMode::PostInc
                    } else {
                        AddrMode::Offset
                    };
                    let w = width((p >> 12) & 0x7)?;
                    // Sign-extend the 12-bit offset.
                    let offset = i32::from((((p & 0xfff) as i16) << 4) >> 4);
                    let (rt, rn) = (r(a)?, r(b)?);
                    if opcode == OP_LDR {
                        ThumbInstr::Ldr {
                            width: w,
                            rt,
                            rn,
                            offset,
                            mode,
                        }
                    } else {
                        ThumbInstr::Str {
                            width: w,
                            rt,
                            rn,
                            offset,
                            mode,
                        }
                    }
                }
                OP_B => {
                    let delta = isize::from(p as i16);
                    let target = hw_pc
                        .checked_add_signed(delta)
                        .ok_or(CodeError::BranchTarget { hw_pc })?;
                    ThumbInstr::B {
                        cond: cond(a)?,
                        target,
                    }
                }
                OP_VLDR | OP_VLDR_POST | OP_VSTR => {
                    let (sd, rn, offset) = (s(a)?, r(b)?, i32::from(p as i16));
                    match opcode {
                        OP_VLDR => ThumbInstr::Vldr { sd, rn, offset },
                        OP_VLDR_POST => ThumbInstr::VldrPost { sd, rn, offset },
                        _ => ThumbInstr::Vstr { sd, rn, offset },
                    }
                }
                OP_VMOV_F => ThumbInstr::VmovF {
                    sd: s(a)?,
                    sm: s(p)?,
                },
                OP_VADD | OP_VSUB | OP_VMUL | OP_VMLA | OP_VDIV => {
                    let (sd, sn, sm) = (s(a)?, s(p & 0xff)?, s(p >> 8)?);
                    match opcode {
                        OP_VADD => ThumbInstr::Vadd { sd, sn, sm },
                        OP_VSUB => ThumbInstr::Vsub { sd, sn, sm },
                        OP_VMUL => ThumbInstr::Vmul { sd, sn, sm },
                        OP_VMLA => ThumbInstr::Vmla { sd, sn, sm },
                        _ => ThumbInstr::Vdiv { sd, sn, sm },
                    }
                }
                OP_VABS | OP_VNEG | OP_VCVT_F32_S32 | OP_VCVT_S32_F32 => {
                    let (sd, sm) = (s(a)?, s(p)?);
                    match opcode {
                        OP_VABS => ThumbInstr::Vabs { sd, sm },
                        OP_VNEG => ThumbInstr::Vneg { sd, sm },
                        OP_VCVT_F32_S32 => ThumbInstr::VcvtF32S32 { sd, sm },
                        _ => ThumbInstr::VcvtS32F32 { sd, sm },
                    }
                }
                OP_VCMP => ThumbInstr::Vcmp {
                    sn: s(a)?,
                    sm: s(p)?,
                },
                _ => return Err(CodeError::Opcode { hw_pc, hw }),
            }
        }
        (false, _) => return Err(CodeError::Opcode { hw_pc, hw }),
    };
    Ok((instr, if wide { 2 } else { 1 }))
}

/// A program decoded from halfword code in one pass — the M4's decode
/// cache (see the module docs: flash is immutable, so the cache never
/// invalidates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedProgram {
    instrs: Vec<ThumbInstr>,
}

impl DecodedProgram {
    /// Decodes every static instruction and rewrites branch targets from
    /// halfword offsets to instruction indices.
    ///
    /// # Errors
    ///
    /// See [`CodeError`]; notably [`CodeError::BranchTarget`] if a branch
    /// lands in the middle of a wide instruction.
    pub fn decode(code: &[u16]) -> Result<DecodedProgram, CodeError> {
        let mut instrs = Vec::new();
        let mut starts = Vec::new(); // halfword offset of each instruction
        let mut index_at = vec![usize::MAX; code.len() + 1];
        let mut hw = 0usize;
        while hw < code.len() {
            index_at[hw] = instrs.len();
            starts.push(hw);
            let (instr, len) = decode_at(code, hw)?;
            instrs.push(instr);
            hw += len;
        }
        index_at[code.len()] = instrs.len();

        for (i, instr) in instrs.iter_mut().enumerate() {
            if let ThumbInstr::B { target, .. } = instr {
                let index = index_at
                    .get(*target)
                    .copied()
                    .filter(|&ix| ix != usize::MAX)
                    .ok_or(CodeError::BranchTarget { hw_pc: starts[i] })?;
                *target = index;
            }
        }
        Ok(DecodedProgram { instrs })
    }

    /// The decoded instructions, branch targets in instruction indices —
    /// directly executable by [`CortexM4::run`](crate::CortexM4::run).
    #[must_use]
    pub fn instrs(&self) -> &[ThumbInstr] {
        &self.instrs
    }

    /// Consumes the program, returning the instruction list.
    #[must_use]
    pub fn into_instrs(self) -> Vec<ThumbInstr> {
        self.instrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ThumbAsm;
    use crate::cpu::CortexM4;
    use crate::timing::CortexM4Timing;
    use iw_rv32::Ram;

    /// A program touching every encoding family: narrow + wide integer,
    /// loads/stores both modes, branches both directions, and VFP.
    fn kitchen_sink() -> Vec<ThumbInstr> {
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, 0x100);
        asm.li(R::R1, 5);
        asm.li(R::R2, 0);
        let top = asm.here();
        asm.ldr(LsWidth::H, R::R3, R::R0, 0);
        asm.ldr_post(LsWidth::W, R::R4, R::R0, 4);
        asm.dp(DpOp::Add, R::R2, R::R2, R::R4);
        asm.emit(ThumbInstr::Mla {
            rd: R::R2,
            rn: R::R3,
            rm: R::R1,
            ra: R::R2,
        });
        asm.emit(ThumbInstr::Ssat {
            rd: R::R2,
            sat: 24,
            rn: R::R2,
        });
        asm.subs(R::R1, R::R1, 1);
        asm.b_to(Cond::Ne, top);
        asm.emit(ThumbInstr::MovReg {
            rd: R::R6,
            rm: R::R2,
        });
        asm.emit(ThumbInstr::VmovToS {
            sd: S::new(0),
            rt: R::R2,
        });
        asm.emit(ThumbInstr::VcvtF32S32 {
            sd: S::new(1),
            sm: S::new(0),
        });
        asm.emit(ThumbInstr::Vmla {
            sd: S::new(2),
            sn: S::new(1),
            sm: S::new(1),
        });
        asm.emit(ThumbInstr::Vcmp {
            sn: S::new(2),
            sm: S::new(1),
        });
        asm.emit(ThumbInstr::Vmrs);
        asm.str(LsWidth::W, R::R2, R::R0, 0x40);
        asm.bkpt();
        asm.finish().unwrap()
    }

    #[test]
    fn roundtrip_preserves_program() {
        let program = kitchen_sink();
        let code = encode_program(&program).unwrap();
        // Mixed lengths: must be longer than the instruction count but
        // shorter than all-wide.
        assert!(code.len() > program.len());
        assert!(code.len() < 2 * program.len());
        let decoded = DecodedProgram::decode(&code).unwrap();
        assert_eq!(decoded.instrs(), &program[..]);
    }

    #[test]
    fn per_halfword_execution_matches_predecoded() {
        let program = kitchen_sink();
        let code = encode_program(&program).unwrap();

        let fill = |ram: &mut Ram| {
            for i in 0..16u32 {
                ram.write_bytes(0x100 + 4 * i, &(i + 1).to_le_bytes());
            }
        };
        let t = CortexM4Timing::default();

        let mut ram_a = Ram::new(0, 4096);
        fill(&mut ram_a);
        let mut ref_cpu = CortexM4::new();
        let decoded = DecodedProgram::decode(&code).unwrap();
        let ref_res = ref_cpu
            .run(decoded.instrs(), &mut ram_a, &t, 1_000_000)
            .unwrap();

        let mut ram_b = Ram::new(0, 4096);
        fill(&mut ram_b);
        let mut cpu = CortexM4::new();
        let res = cpu.run_code(&code, &mut ram_b, &t, 1_000_000).unwrap();

        assert_eq!(res, ref_res, "cycles and instruction counts must agree");
        for i in 0..15u8 {
            assert_eq!(cpu.reg(R::new(i)), ref_cpu.reg(R::new(i)), "r{i}");
        }
        for i in 0..32u8 {
            assert_eq!(
                cpu.sreg(S::new(i)).to_bits(),
                ref_cpu.sreg(S::new(i)).to_bits(),
                "s{i}"
            );
        }
        assert_eq!(cpu.flags(), ref_cpu.flags());
        assert_eq!(cpu.profile(), ref_cpu.profile());
        assert_eq!(
            ram_b.read_bytes(0x140, 4),
            ram_a.read_bytes(0x140, 4),
            "stored results must agree"
        );
    }

    #[test]
    fn branch_into_wide_instruction_rejected() {
        // movw r0, #7 (wide, offsets 0-1); b.al into its payload halfword.
        let mut code = encode_program(&[
            ThumbInstr::Movw { rd: R::R0, imm: 7 },
            ThumbInstr::B {
                cond: Cond::Al,
                target: 0,
            },
            ThumbInstr::Bkpt,
        ])
        .unwrap();
        // Patch the branch delta to land at halfword 1 (mid-movw).
        // Branch starts at halfword 2, so delta -1.
        code[3] = -1i16 as u16;
        let err = DecodedProgram::decode(&code).unwrap_err();
        assert_eq!(err, CodeError::BranchTarget { hw_pc: 2 });
    }

    #[test]
    fn truncated_and_unknown_rejected() {
        let code = [hw1(true, OP_MOVW, 0, 0)];
        assert_eq!(
            decode_at(&code, 0).unwrap_err(),
            CodeError::Truncated { hw_pc: 0 }
        );
        let code = [hw1(false, 63, 0, 0)];
        assert!(matches!(
            decode_at(&code, 0).unwrap_err(),
            CodeError::Opcode { hw_pc: 0, .. }
        ));
    }

    #[test]
    fn out_of_range_encodings_rejected() {
        assert_eq!(
            encode_program(&[ThumbInstr::AddImm {
                rd: R::R0,
                rn: R::R0,
                imm: 40_000,
            }]),
            Err(EncodeError::Imm { index: 0 })
        );
        assert_eq!(
            encode_program(&[ThumbInstr::Ldr {
                width: LsWidth::W,
                rt: R::R0,
                rn: R::R1,
                offset: 4096,
                mode: AddrMode::Offset,
            }]),
            Err(EncodeError::Offset { index: 0 })
        );
        assert_eq!(
            encode_program(&[ThumbInstr::B {
                cond: Cond::Al,
                target: 7,
            }]),
            Err(EncodeError::Branch { index: 0 })
        );
    }

    #[test]
    fn branch_to_program_end_is_legal() {
        // `b.al end` used as "skip to exit" must survive the roundtrip.
        let program = vec![
            ThumbInstr::B {
                cond: Cond::Al,
                target: 2,
            },
            ThumbInstr::Nop,
            ThumbInstr::Bkpt,
        ];
        let code = encode_program(&program).unwrap();
        let decoded = DecodedProgram::decode(&code).unwrap();
        assert_eq!(decoded.instrs(), &program[..]);
    }
}
