//! # iw-armv7m — ARM Cortex-M4F subset simulator
//!
//! The ARM substrate of the InfiniWolf reproduction (Magno et al., DATE
//! 2020): a semantic-level simulator of the Thumb-2 + FPv4-SP subset that
//! the stress-detection inference kernels use, with the Cortex-M4 timing
//! model ([`CortexM4Timing`]) — single-cycle MAC, pipelined 2-cycle loads,
//! 3-cycle taken branches, 3-cycle `vmla.f32`.
//!
//! Programs are built with [`asm::ThumbAsm`] and run on [`CortexM4`]
//! against any [`iw_rv32::Bus`] data memory, so ARM and RISC-V kernels can
//! share identical memory images — a prerequisite for the bit-exactness
//! checks in `iw-kernels`.
//!
//! Instruction *semantics and timing* are modelled; the [`code`] module
//! adds a variable-length halfword encoding with the same shape as real
//! Thumb-2 (1–2 halfwords per instruction, pc-relative branches) without
//! claiming ARM bit-exactness. Pre-decoding a whole program once with
//! [`code::DecodedProgram`] is the M4's decode cache: code executes from
//! immutable flash, so the cache never invalidates, and the decoded
//! `&[ThumbInstr]` runs on the fast [`CortexM4::run`] path. The
//! per-halfword [`CortexM4::run_code`] path is the uncached reference,
//! bit- and cycle-identical by differential test. This is documented in
//! DESIGN.md: the paper's evaluation needs cycle counts and results of the
//! kernels, which the semantic model fully determines.
//!
//! # Examples
//!
//! A dot product with the single-cycle MAC:
//!
//! ```
//! use iw_armv7m::{asm::ThumbAsm, CortexM4, CortexM4Timing, Cond, LsWidth, R};
//! use iw_rv32::Ram;
//!
//! let mut ram = Ram::new(0, 256);
//! for i in 0..4u32 {
//!     ram.write_bytes(0x40 + 4 * i, &(i + 1).to_le_bytes()); // a = [1,2,3,4]
//!     ram.write_bytes(0x80 + 4 * i, &2u32.to_le_bytes());    // b = [2,2,2,2]
//! }
//!
//! let mut asm = ThumbAsm::new();
//! asm.li(R::R0, 0x40);
//! asm.li(R::R1, 0x80);
//! asm.li(R::R2, 4); // count
//! asm.li(R::R3, 0); // acc
//! let top = asm.here();
//! asm.ldr_post(LsWidth::W, R::R4, R::R0, 4);
//! asm.ldr_post(LsWidth::W, R::R5, R::R1, 4);
//! asm.mla(R::R3, R::R4, R::R5, R::R3);
//! asm.subs(R::R2, R::R2, 1);
//! asm.b_to(Cond::Ne, top);
//! asm.bkpt();
//!
//! let mut cpu = CortexM4::new();
//! cpu.run(&asm.finish()?, &mut ram, &CortexM4Timing::default(), 10_000)?;
//! assert_eq!(cpu.reg(R::R3), 20);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod asm;
mod block;
pub mod code;
mod cpu;
mod instr;
mod timing;

pub use block::{BlockProgram, FusedStats};
pub use code::{decode_at, encode_program, CodeError, DecodedProgram, EncodeError};
pub use cpu::{CortexM4, Flags, M4Error, RunResult};
pub use instr::{AddrMode, Cond, DpOp, LsWidth, ThumbInstr, R, S};
pub use timing::CortexM4Timing;
