//! Cortex-M4F cycle model.

/// Per-instruction cycle costs for the Cortex-M4F (ARMv7E-M, 3-stage
/// pipeline with a single AHB data port and the FPv4-SP FPU).
///
/// Values follow the ARM Cortex-M4 Technical Reference Manual instruction
/// timing table: single-cycle ALU and 32-bit MAC, 2-cycle loads that
/// pipeline back-to-back, 2..12-cycle `sdiv` (a fixed representative cost
/// is used — the model is data-independent), and a 3-cycle pipeline refill
/// on taken branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CortexM4Timing {
    /// ALU / mov / compare / saturate.
    pub alu: u32,
    /// 32×32→32 multiply.
    pub mul: u32,
    /// `mla`/`mls`.
    pub mla: u32,
    /// `smull`/`smlal`.
    pub smull: u32,
    /// `sdiv`/`udiv` representative cost.
    pub sdiv: u32,
    /// First load of a sequence.
    pub ldr: u32,
    /// A load immediately following another load.
    pub ldr_pipelined: u32,
    /// Store (write buffer).
    pub str: u32,
    /// Taken branch (pipeline refill).
    pub branch_taken: u32,
    /// Not-taken branch.
    pub branch_not_taken: u32,
    /// `vldr` first of a sequence.
    pub vldr: u32,
    /// `vldr` following another load.
    pub vldr_pipelined: u32,
    /// `vadd`/`vsub`/`vmul`/`vcvt`/`vcmp`.
    pub vfp_alu: u32,
    /// `vmla.f32` (chained multiply-add).
    pub vmla: u32,
    /// `vdiv.f32`.
    pub vdiv: u32,
}

impl Default for CortexM4Timing {
    fn default() -> CortexM4Timing {
        CortexM4Timing {
            alu: 1,
            mul: 1,
            mla: 1,
            smull: 1,
            sdiv: 7,
            ldr: 2,
            ldr_pipelined: 1,
            str: 1,
            branch_taken: 3,
            branch_not_taken: 1,
            vldr: 2,
            vldr_pipelined: 1,
            vfp_alu: 1,
            vmla: 3,
            vdiv: 14,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reflect_trm() {
        let t = CortexM4Timing::default();
        assert_eq!(t.alu, 1);
        assert_eq!(t.ldr, 2);
        assert_eq!(t.ldr_pipelined, 1);
        assert!(t.vdiv > t.vmla);
    }
}
