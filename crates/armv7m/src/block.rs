//! Superinstruction fusion for pre-decoded Thumb programs.
//!
//! The M4 executes from immutable flash, so a `&[ThumbInstr]` program can
//! be compiled **once** into a [`BlockProgram`]: a flat array, indexed by
//! the same instruction-index program counter, whose entries are either a
//! single instruction or a *fused* superinstruction covering the 2–3
//! instructions that start at that index. [`CortexM4::run_fused`] then
//! dispatches once per superinstruction instead of once per instruction,
//! executing the fused body as straight-line code.
//!
//! Fusion targets the dispatch shapes that dominate the InfiniWolf DSP
//! kernels:
//!
//! * `vldmia rn!, {sa}` + `vldmia rm!, {sb}` + `vmla.f32` — the f32 MAC
//!   inner loop,
//! * `ldr rt, [rn], #4` ×2 + `smlad` — the packed q15 MAC inner loop,
//! * `ldr rt, [rn], #4` ×2 — post-increment streaming pairs,
//! * `mul` + `asr #k` + `add` — the q15 requantisation tail,
//! * `subs` + `b.cc` — the loop back-edge.
//!
//! Every fused handler replays the exact per-instruction semantics of
//! [`CortexM4::exec_decoded`] — flag updates, the load-pipelining cycle
//! discount, per-class profile accounting, and fault ordering — so results,
//! cycle counts, and error states are bit-identical to [`CortexM4::run`].
//! Indices *inside* a fused pattern keep their unfused single entries, so a
//! branch that jumps into the middle of a pattern executes the remaining
//! instructions individually; no basic-block boundary analysis is needed.

use iw_rv32::{Bus, InstrClass, MemWidth};

use crate::cpu::{CortexM4, Flags, M4Error, RunResult};
use crate::instr::{AddrMode, Cond, DpOp, LsWidth, ThumbInstr, R, S};
use crate::timing::CortexM4Timing;

/// One slot of a [`BlockProgram`]: a single instruction or a fused
/// superinstruction starting at this index.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FusedOp {
    /// No pattern starts here; execute one instruction.
    Single(ThumbInstr),
    /// `vldmia rn!, {sa}; vldmia rm!, {sb}; vmla.f32 sd, sn, sm`.
    VldrVldrVmla {
        sa: S,
        ra: R,
        offa: i32,
        sb: S,
        rb: R,
        offb: i32,
        sd: S,
        sn: S,
        sm: S,
    },
    /// `ldr rta, [ra], #offa; ldr rtb, [rb], #offb; smlad rd, rn, rm, racc`.
    LdrLdrSmlad {
        rta: R,
        ra: R,
        offa: i32,
        rtb: R,
        rb: R,
        offb: i32,
        rd: R,
        rn: R,
        rm: R,
        racc: R,
    },
    /// `ldr rta, [ra], #offa; ldr rtb, [rb], #offb`.
    LdrLdr {
        rta: R,
        ra: R,
        offa: i32,
        rtb: R,
        rb: R,
        offb: i32,
    },
    /// `mul rd, rn, rm; asr rd2, rm2, #shamt; add rd3, rn3, rm3`.
    MulAsrAdd {
        rd: R,
        rn: R,
        rm: R,
        rd2: R,
        rm2: R,
        shamt: u8,
        rd3: R,
        rn3: R,
        rm3: R,
    },
    /// `subs rd, rn, #imm; b.cond target`.
    SubsB {
        rd: R,
        rn: R,
        imm: i32,
        cond: Cond,
        target: usize,
    },
}

/// Execution counters for [`CortexM4::run_fused`].
///
/// `dispatches` counts superinstruction slots entered (fused or single);
/// `instructions` counts instructions retired through them, so
/// [`FusedStats::avg_burst`] is the mean number of instructions executed
/// per dispatch — the dispatch-amortisation the fusion buys.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusedStats {
    /// Slots entered (one per dispatch-loop iteration).
    pub dispatches: u64,
    /// Instructions retired through those slots.
    pub instructions: u64,
    /// `vldr`+`vldr`+`vmla.f32` superinstructions executed.
    pub fused_vldr_vldr_vmla: u64,
    /// `ldr`+`ldr`+`smlad` superinstructions executed.
    pub fused_ldr_ldr_smlad: u64,
    /// `ldr`+`ldr` pair superinstructions executed.
    pub fused_ldr_ldr: u64,
    /// `mul`+`asr`+`add` superinstructions executed.
    pub fused_mul_asr_add: u64,
    /// `subs`+`b.cc` superinstructions executed.
    pub fused_subs_b: u64,
}

impl FusedStats {
    /// Total fused superinstructions executed.
    #[must_use]
    pub fn fused_total(&self) -> u64 {
        self.fused_vldr_vldr_vmla
            + self.fused_ldr_ldr_smlad
            + self.fused_ldr_ldr
            + self.fused_mul_asr_add
            + self.fused_subs_b
    }

    /// Mean instructions retired per dispatch (1.0 with no fusion).
    #[must_use]
    pub fn avg_burst(&self) -> f64 {
        if self.dispatches == 0 {
            1.0
        } else {
            self.instructions as f64 / self.dispatches as f64
        }
    }
}

/// A pre-decoded program compiled with superinstruction fusion.
///
/// Built once from a `&[ThumbInstr]` slice with [`BlockProgram::compile`];
/// run with [`CortexM4::run_fused`]. Compilation is greedy left-to-right:
/// when a fusion pattern matches at index `i` the slot at `i` becomes the
/// superinstruction and scanning resumes past it, while slots `i+1..i+k`
/// keep their single instructions for jump-into-pattern correctness.
///
/// # Examples
///
/// ```
/// use iw_armv7m::{asm::ThumbAsm, BlockProgram, CortexM4, CortexM4Timing, FusedStats};
/// use iw_armv7m::{Cond, LsWidth, R};
/// use iw_rv32::Ram;
/// let mut asm = ThumbAsm::new();
/// asm.li(R::R0, 6);
/// asm.li(R::R1, 7);
/// asm.mul(R::R0, R::R0, R::R1);
/// asm.bkpt();
/// let prog = BlockProgram::compile(&asm.finish()?);
/// let mut cpu = CortexM4::new();
/// let mut ram = Ram::new(0, 64);
/// let mut stats = FusedStats::default();
/// cpu.run_fused(&prog, &mut ram, &CortexM4Timing::default(), 1_000, &mut stats)?;
/// assert_eq!(cpu.reg(R::R0), 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BlockProgram {
    ops: Vec<FusedOp>,
    fused_sites: usize,
    fused_instrs: usize,
}

impl BlockProgram {
    /// Compiles a pre-decoded program, fusing every pattern occurrence.
    #[must_use]
    pub fn compile(program: &[ThumbInstr]) -> BlockProgram {
        let mut ops: Vec<FusedOp> = program.iter().map(|i| FusedOp::Single(*i)).collect();
        let mut fused_sites = 0;
        let mut fused_instrs = 0;
        let mut i = 0;
        while i < program.len() {
            if let Some((op, len)) = try_fuse(&program[i..]) {
                ops[i] = op;
                fused_sites += 1;
                fused_instrs += len;
                i += len;
            } else {
                i += 1;
            }
        }
        BlockProgram {
            ops,
            fused_sites,
            fused_instrs,
        }
    }

    /// Number of slots (equal to the source program's instruction count).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of fusion sites found at compile time.
    #[must_use]
    pub fn fused_sites(&self) -> usize {
        self.fused_sites
    }

    /// Number of source instructions covered by fusion sites.
    #[must_use]
    pub fn fused_instrs(&self) -> usize {
        self.fused_instrs
    }
}

/// Matches a fusion pattern at the start of `window`; returns the fused op
/// and how many instructions it covers.
fn try_fuse(window: &[ThumbInstr]) -> Option<(FusedOp, usize)> {
    use ThumbInstr as I;
    match *window {
        [I::VldrPost {
            sd: sa,
            rn: ra,
            offset: offa,
        }, I::VldrPost {
            sd: sb,
            rn: rb,
            offset: offb,
        }, I::Vmla { sd, sn, sm }, ..] => Some((
            FusedOp::VldrVldrVmla {
                sa,
                ra,
                offa,
                sb,
                rb,
                offb,
                sd,
                sn,
                sm,
            },
            3,
        )),
        [I::Ldr {
            width: LsWidth::W,
            rt: rta,
            rn: ra,
            offset: offa,
            mode: AddrMode::PostInc,
        }, I::Ldr {
            width: LsWidth::W,
            rt: rtb,
            rn: rb,
            offset: offb,
            mode: AddrMode::PostInc,
        }, ..] => {
            if let Some(&I::Smlad {
                rd,
                rn,
                rm,
                ra: racc,
            }) = window.get(2)
            {
                Some((
                    FusedOp::LdrLdrSmlad {
                        rta,
                        ra,
                        offa,
                        rtb,
                        rb,
                        offb,
                        rd,
                        rn,
                        rm,
                        racc,
                    },
                    3,
                ))
            } else {
                Some((
                    FusedOp::LdrLdr {
                        rta,
                        ra,
                        offa,
                        rtb,
                        rb,
                        offb,
                    },
                    2,
                ))
            }
        }
        [I::Dp {
            op: DpOp::Mul,
            rd,
            rn,
            rm,
        }, I::AsrImm {
            rd: rd2,
            rm: rm2,
            shamt,
        }, I::Dp {
            op: DpOp::Add,
            rd: rd3,
            rn: rn3,
            rm: rm3,
        }, ..] => Some((
            FusedOp::MulAsrAdd {
                rd,
                rn,
                rm,
                rd2,
                rm2,
                shamt,
                rd3,
                rn3,
                rm3,
            },
            3,
        )),
        [I::SubsImm { rd, rn, imm }, I::B { cond, target }, ..] => Some((
            FusedOp::SubsB {
                rd,
                rn,
                imm,
                cond,
                target,
            },
            2,
        )),
        _ => None,
    }
}

/// Partial result of one fused dispatch: cycles and instructions retired.
struct Burst {
    cycles: u64,
    retired: u64,
}

impl CortexM4 {
    #[inline]
    fn reg_i(&self, r: R) -> u32 {
        self.r[r.index() as usize]
    }

    #[inline]
    fn set_reg_i(&mut self, r: R, v: u32) {
        self.r[r.index() as usize] = v;
    }

    /// One post-increment word load sub-instruction, bit-identical to the
    /// `Ldr { mode: PostInc, width: W }` arm of [`CortexM4::exec_decoded`].
    #[inline]
    fn sub_ldr_post_w<B: Bus>(
        &mut self,
        rt: R,
        rn: R,
        offset: i32,
        bus: &mut B,
        t: &CortexM4Timing,
        pc: usize,
    ) -> Result<u32, M4Error> {
        let cost = if self.last_was_load {
            t.ldr_pipelined
        } else {
            t.ldr
        };
        self.last_was_load = true;
        let base = self.reg_i(rn);
        if !base.is_multiple_of(4) {
            return Err(M4Error::Misaligned { addr: base, pc });
        }
        let raw = bus.load(base, MemWidth::W)?;
        self.set_reg_i(rt, raw);
        if rt != rn {
            self.set_reg_i(rn, base.wrapping_add(offset as u32));
        }
        self.profile.record(InstrClass::Load, cost);
        self.pc = pc + 1;
        self.retired += 1;
        Ok(cost)
    }

    /// One `vldmia rn!, {sd}` sub-instruction, bit-identical to the
    /// `VldrPost` arm of [`CortexM4::exec_decoded`].
    #[inline]
    fn sub_vldr_post<B: Bus>(
        &mut self,
        sd: S,
        rn: R,
        offset: i32,
        bus: &mut B,
        t: &CortexM4Timing,
        pc: usize,
    ) -> Result<u32, M4Error> {
        let cost = if self.last_was_load {
            t.vldr_pipelined
        } else {
            t.vldr
        };
        self.last_was_load = true;
        let addr = self.reg_i(rn);
        if !addr.is_multiple_of(4) {
            return Err(M4Error::Misaligned { addr, pc });
        }
        let raw = bus.load(addr, MemWidth::W)?;
        self.s[sd.index() as usize] = raw;
        self.set_reg_i(rn, addr.wrapping_add(offset as u32));
        self.profile.record(InstrClass::Load, cost);
        self.pc = pc + 1;
        self.retired += 1;
        Ok(cost)
    }

    /// Executes one fused superinstruction starting at `pc`, stopping
    /// early if `budget` cycles are exceeded (the caller then raises
    /// `CycleLimit` with the partial state, exactly as the per-instruction
    /// reference would).
    fn exec_fused<B: Bus>(
        &mut self,
        op: &FusedOp,
        pc: usize,
        bus: &mut B,
        t: &CortexM4Timing,
        budget: u64,
        stats: &mut FusedStats,
    ) -> Result<Burst, M4Error> {
        let mut cycles: u64;
        let mut retired = 1u64;
        match *op {
            FusedOp::Single(_) => unreachable!("singles dispatch via exec_decoded"),
            FusedOp::VldrVldrVmla {
                sa,
                ra,
                offa,
                sb,
                rb,
                offb,
                sd,
                sn,
                sm,
            } => {
                stats.fused_vldr_vldr_vmla += 1;
                cycles = u64::from(self.sub_vldr_post(sa, ra, offa, bus, t, pc)?);
                if cycles > budget {
                    return Ok(Burst { cycles, retired });
                }
                cycles += u64::from(self.sub_vldr_post(sb, rb, offb, bus, t, pc + 1)?);
                retired += 1;
                if cycles > budget {
                    return Ok(Burst { cycles, retired });
                }
                self.last_was_load = false;
                let v = f32::from_bits(self.s[sd.index() as usize])
                    + f32::from_bits(self.s[sn.index() as usize])
                        * f32::from_bits(self.s[sm.index() as usize]);
                self.s[sd.index() as usize] = v.to_bits();
                self.profile.record(InstrClass::Float, t.vmla);
                self.pc = pc + 3;
                self.retired += 1;
                cycles += u64::from(t.vmla);
                retired += 1;
            }
            FusedOp::LdrLdrSmlad {
                rta,
                ra,
                offa,
                rtb,
                rb,
                offb,
                rd,
                rn,
                rm,
                racc,
            } => {
                stats.fused_ldr_ldr_smlad += 1;
                cycles = u64::from(self.sub_ldr_post_w(rta, ra, offa, bus, t, pc)?);
                if cycles > budget {
                    return Ok(Burst { cycles, retired });
                }
                cycles += u64::from(self.sub_ldr_post_w(rtb, rb, offb, bus, t, pc + 1)?);
                retired += 1;
                if cycles > budget {
                    return Ok(Burst { cycles, retired });
                }
                self.last_was_load = false;
                let a = self.reg_i(rn);
                let b = self.reg_i(rm);
                let p0 = i32::from(a as u16 as i16) * i32::from(b as u16 as i16);
                let p1 = i32::from((a >> 16) as u16 as i16) * i32::from((b >> 16) as u16 as i16);
                let v = (self.reg_i(racc) as i32).wrapping_add(p0.wrapping_add(p1)) as u32;
                self.set_reg_i(rd, v);
                self.profile.record(InstrClass::Dsp, t.mla);
                self.pc = pc + 3;
                self.retired += 1;
                cycles += u64::from(t.mla);
                retired += 1;
            }
            FusedOp::LdrLdr {
                rta,
                ra,
                offa,
                rtb,
                rb,
                offb,
            } => {
                stats.fused_ldr_ldr += 1;
                cycles = u64::from(self.sub_ldr_post_w(rta, ra, offa, bus, t, pc)?);
                if cycles > budget {
                    return Ok(Burst { cycles, retired });
                }
                cycles += u64::from(self.sub_ldr_post_w(rtb, rb, offb, bus, t, pc + 1)?);
                retired += 1;
            }
            FusedOp::MulAsrAdd {
                rd,
                rn,
                rm,
                rd2,
                rm2,
                shamt,
                rd3,
                rn3,
                rm3,
            } => {
                stats.fused_mul_asr_add += 1;
                self.last_was_load = false;
                let v = self.reg_i(rn).wrapping_mul(self.reg_i(rm));
                self.set_reg_i(rd, v);
                self.profile.record(InstrClass::Mul, t.mul);
                self.pc = pc + 1;
                self.retired += 1;
                cycles = u64::from(t.mul);
                if cycles > budget {
                    return Ok(Burst { cycles, retired });
                }
                let v = ((self.reg_i(rm2) as i32) >> shamt) as u32;
                self.set_reg_i(rd2, v);
                self.profile.record(InstrClass::Alu, t.alu);
                self.pc = pc + 2;
                self.retired += 1;
                cycles += u64::from(t.alu);
                retired += 1;
                if cycles > budget {
                    return Ok(Burst { cycles, retired });
                }
                let v = self.reg_i(rn3).wrapping_add(self.reg_i(rm3));
                self.set_reg_i(rd3, v);
                self.profile.record(InstrClass::Alu, t.alu);
                self.pc = pc + 3;
                self.retired += 1;
                cycles += u64::from(t.alu);
                retired += 1;
            }
            FusedOp::SubsB {
                rd,
                rn,
                imm,
                cond,
                target,
            } => {
                stats.fused_subs_b += 1;
                self.last_was_load = false;
                let a = self.reg_i(rn);
                self.flags = Flags::from_sub(a, imm as u32);
                self.set_reg_i(rd, a.wrapping_sub(imm as u32));
                self.profile.record(InstrClass::Alu, t.alu);
                self.pc = pc + 1;
                self.retired += 1;
                cycles = u64::from(t.alu);
                if cycles > budget {
                    return Ok(Burst { cycles, retired });
                }
                let (cost, class) = if self.flags.check(cond) {
                    self.pc = target;
                    (t.branch_taken, InstrClass::BranchTaken)
                } else {
                    self.pc = pc + 2;
                    (t.branch_not_taken, InstrClass::BranchNotTaken)
                };
                self.profile.record(class, cost);
                self.retired += 1;
                cycles += u64::from(cost);
                retired += 1;
            }
        }
        Ok(Burst { cycles, retired })
    }

    /// Runs until `bkpt` over a fusion-compiled program — the
    /// superinstruction fast path for [`CortexM4::run`]. Results, cycle
    /// counts, profiles, and error states are bit-identical to running the
    /// source `&[ThumbInstr]` program; `stats` accumulates dispatch and
    /// per-pattern counters across calls.
    ///
    /// # Errors
    ///
    /// Same as [`CortexM4::run`].
    pub fn run_fused<B: Bus>(
        &mut self,
        prog: &BlockProgram,
        bus: &mut B,
        t: &CortexM4Timing,
        max_cycles: u64,
        stats: &mut FusedStats,
    ) -> Result<RunResult, M4Error> {
        let mut cycles = 0u64;
        let mut instructions = 0u64;
        while !self.halted {
            let pc = self.pc;
            let op = prog.ops.get(pc).ok_or(M4Error::PcOutOfRange { pc })?;
            stats.dispatches += 1;
            if let FusedOp::Single(instr) = op {
                let cost = self.exec_decoded(*instr, pc, pc + 1, bus, t)?;
                cycles += u64::from(cost);
                instructions += 1;
                stats.instructions += 1;
            } else {
                let burst = self.exec_fused(op, pc, bus, t, max_cycles - cycles, stats)?;
                cycles += burst.cycles;
                instructions += burst.retired;
                stats.instructions += burst.retired;
            }
            if cycles > max_cycles {
                return Err(M4Error::CycleLimit { limit: max_cycles });
            }
        }
        Ok(RunResult {
            cycles,
            instructions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ThumbAsm;
    use iw_rv32::{Bus, Ram};

    /// Runs `program` on both the reference interpreter and the fused
    /// path and asserts every observable output is bit-identical.
    fn compare(
        program: &[ThumbInstr],
        max_cycles: u64,
        setup: impl Fn(&mut CortexM4, &mut Ram),
    ) -> (CortexM4, FusedStats) {
        let mut ref_cpu = CortexM4::new();
        let mut ref_ram = Ram::new(0, 4096);
        setup(&mut ref_cpu, &mut ref_ram);
        let t = CortexM4Timing::default();
        let ref_res = ref_cpu.run(program, &mut ref_ram, &t, max_cycles);

        let prog = BlockProgram::compile(program);
        let mut cpu = CortexM4::new();
        let mut ram = Ram::new(0, 4096);
        setup(&mut cpu, &mut ram);
        let mut stats = FusedStats::default();
        let res = cpu.run_fused(&prog, &mut ram, &t, max_cycles, &mut stats);

        assert_eq!(res, ref_res);
        assert_eq!(cpu.pc(), ref_cpu.pc());
        assert_eq!(cpu.is_halted(), ref_cpu.is_halted());
        assert_eq!(cpu.retired(), ref_cpu.retired());
        assert_eq!(cpu.flags(), ref_cpu.flags());
        assert_eq!(cpu.profile(), ref_cpu.profile());
        for i in 0..15 {
            assert_eq!(cpu.reg(R::new(i)), ref_cpu.reg(R::new(i)), "r{i}");
        }
        for i in 0..32 {
            assert_eq!(
                cpu.sreg(S::new(i)).to_bits(),
                ref_cpu.sreg(S::new(i)).to_bits(),
                "s{i}"
            );
        }
        for addr in (0..4096u32).step_by(4) {
            assert_eq!(
                ram.load(addr, MemWidth::W).unwrap(),
                ref_ram.load(addr, MemWidth::W).unwrap(),
                "ram word {addr:#x}"
            );
        }
        (cpu, stats)
    }

    fn q15_dot_kernel() -> Vec<ThumbInstr> {
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, 0x100);
        asm.li(R::R1, 0x200);
        asm.li(R::R2, 8); // packed-pair count
        asm.li(R::R3, 0); // acc
        let top = asm.here();
        asm.ldr_post(LsWidth::W, R::R4, R::R0, 4);
        asm.ldr_post(LsWidth::W, R::R5, R::R1, 4);
        asm.emit(ThumbInstr::Smlad {
            rd: R::R3,
            rn: R::R4,
            rm: R::R5,
            ra: R::R3,
        });
        asm.subs(R::R2, R::R2, 1);
        asm.b_to(Cond::Ne, top);
        // Requantisation tail: mul, asr, add (kept contiguous to fuse).
        asm.li(R::R6, 3);
        asm.li(R::R7, 100);
        asm.mul(R::R3, R::R3, R::R6);
        asm.asr_imm(R::R3, R::R3, 7);
        asm.dp(DpOp::Add, R::R3, R::R3, R::R7);
        asm.bkpt();
        asm.finish().unwrap()
    }

    fn fill_q15(ram: &mut Ram) {
        for i in 0..8u32 {
            let a = (i as u16 as u32) | (((i + 1) as u16 as u32) << 16);
            let b = (2u32) | (3u32 << 16);
            ram.write_bytes(0x100 + 4 * i, &a.to_le_bytes());
            ram.write_bytes(0x200 + 4 * i, &b.to_le_bytes());
        }
    }

    #[test]
    fn q15_dot_matches_reference_and_fuses() {
        let program = q15_dot_kernel();
        let (cpu, stats) = compare(&program, 1_000_000, |_, ram| fill_q15(ram));
        assert!(cpu.is_halted());
        assert_eq!(stats.fused_ldr_ldr_smlad, 8);
        assert_eq!(stats.fused_subs_b, 8);
        assert!(stats.fused_mul_asr_add >= 1);
        assert!(stats.avg_burst() > 1.5);
    }

    #[test]
    fn f32_mac_loop_matches_reference_and_fuses() {
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, 0x100);
        asm.li(R::R1, 0x200);
        asm.li(R::R2, 6);
        let top = asm.here();
        asm.emit(ThumbInstr::VldrPost {
            sd: S::new(0),
            rn: R::R0,
            offset: 4,
        });
        asm.emit(ThumbInstr::VldrPost {
            sd: S::new(1),
            rn: R::R1,
            offset: 4,
        });
        asm.emit(ThumbInstr::Vmla {
            sd: S::new(2),
            sn: S::new(0),
            sm: S::new(1),
        });
        asm.subs(R::R2, R::R2, 1);
        asm.b_to(Cond::Ne, top);
        asm.bkpt();
        let program = asm.finish().unwrap();
        let (cpu, stats) = compare(&program, 1_000_000, |_, ram| {
            for i in 0..6u32 {
                let a = (i as f32) * 0.5 + 1.0;
                ram.write_bytes(0x100 + 4 * i, &a.to_bits().to_le_bytes());
                ram.write_bytes(0x200 + 4 * i, &2.0f32.to_bits().to_le_bytes());
            }
        });
        assert!(cpu.is_halted());
        assert_eq!(stats.fused_vldr_vldr_vmla, 6);
        assert!(cpu.sreg(S::new(2)) > 0.0);
    }

    #[test]
    fn jump_into_pattern_middle_matches_reference() {
        // Branch lands on the second ldr of a fused (ldr, ldr, smlad)
        // triple: the fused slot is skipped and the retained singles run.
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, 0x100);
        asm.li(R::R1, 0x200);
        asm.li(R::R3, 0);
        let mid = asm.new_label();
        asm.cmp_imm(R::R3, 0);
        asm.b_to(Cond::Eq, mid); // jump over the first ldr
        asm.ldr_post(LsWidth::W, R::R4, R::R0, 4);
        asm.bind(mid);
        asm.ldr_post(LsWidth::W, R::R5, R::R1, 4);
        asm.emit(ThumbInstr::Smlad {
            rd: R::R3,
            rn: R::R4,
            rm: R::R5,
            ra: R::R3,
        });
        asm.bkpt();
        let program = asm.finish().unwrap();
        let (cpu, _) = compare(&program, 1_000, |_, ram| fill_q15(ram));
        assert!(cpu.is_halted());
    }

    #[test]
    fn cycle_limit_stops_mid_fused_op_exactly() {
        let program = q15_dot_kernel();
        for limit in 1..120 {
            compare(&program, limit, |_, ram| fill_q15(ram));
        }
    }

    #[test]
    fn fault_mid_fused_op_matches_reference() {
        // Second post-increment load is misaligned: the fault must land
        // with the first load's writeback already applied.
        let mut asm = ThumbAsm::new();
        asm.ldr_post(LsWidth::W, R::R4, R::R0, 4);
        asm.ldr_post(LsWidth::W, R::R5, R::R1, 4);
        asm.emit(ThumbInstr::Smlad {
            rd: R::R3,
            rn: R::R4,
            rm: R::R5,
            ra: R::R3,
        });
        asm.bkpt();
        let program = asm.finish().unwrap();
        let (cpu, _) = compare(&program, 1_000_000, |cpu, ram| {
            fill_q15(ram);
            cpu.set_reg(R::R0, 0x100);
            cpu.set_reg(R::R1, 0x201);
        });
        assert!(!cpu.is_halted());
        assert_eq!(cpu.reg(R::R0), 0x104); // first load's writeback applied
    }

    #[test]
    fn subs_b_fused_loop_counts_match() {
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, 5);
        asm.li(R::R1, 0);
        let top = asm.here();
        asm.add_imm(R::R1, R::R1, 2);
        asm.subs(R::R0, R::R0, 1);
        asm.b_to(Cond::Ne, top);
        asm.bkpt();
        let program = asm.finish().unwrap();
        let (cpu, stats) = compare(&program, 1_000, |_, _| {});
        assert_eq!(cpu.reg(R::R1), 10);
        assert_eq!(stats.fused_subs_b, 5);
    }

    #[test]
    fn compile_reports_fusion_sites() {
        let program = q15_dot_kernel();
        let prog = BlockProgram::compile(&program);
        assert_eq!(prog.len(), program.len());
        assert!(!prog.is_empty());
        assert!(prog.fused_sites() >= 3); // ldr/ldr/smlad + subs/b + mul/asr/add
        assert!(prog.fused_instrs() >= 8);
    }

    #[test]
    fn empty_program_is_pc_out_of_range() {
        let prog = BlockProgram::compile(&[]);
        let mut cpu = CortexM4::new();
        let mut ram = Ram::new(0, 16);
        let mut stats = FusedStats::default();
        let err = cpu
            .run_fused(&prog, &mut ram, &CortexM4Timing::default(), 100, &mut stats)
            .unwrap_err();
        assert!(matches!(err, M4Error::PcOutOfRange { pc: 0 }));
    }
}
