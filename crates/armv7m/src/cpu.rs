//! The Cortex-M4F interpreter.

use iw_rv32::{Bus, BusError, ExecProfile, InstrClass, MemWidth};
use iw_trace::{NoopSink, TraceSink, TrackId};

use crate::instr::{AddrMode, Cond, DpOp, LsWidth, ThumbInstr, R, S};
use crate::timing::CortexM4Timing;

/// Error raised while executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum M4Error {
    /// A data access faulted.
    Bus(BusError),
    /// Encoded code could not be decoded (see [`crate::code`]).
    Code(crate::code::CodeError),
    /// Execution ran past the end of the program without hitting `bkpt`.
    PcOutOfRange {
        /// The offending instruction index.
        pc: usize,
    },
    /// A data access was not naturally aligned.
    Misaligned {
        /// Faulting data address.
        addr: u32,
        /// Index of the offending instruction.
        pc: usize,
    },
    /// A store used a signed (load-only) width.
    BadStoreWidth {
        /// Index of the offending instruction.
        pc: usize,
    },
    /// The run exceeded the caller-provided cycle budget.
    CycleLimit {
        /// The budget that was exhausted.
        limit: u64,
    },
}

impl core::fmt::Display for M4Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            M4Error::Bus(e) => write!(f, "{e}"),
            M4Error::Code(e) => write!(f, "{e}"),
            M4Error::PcOutOfRange { pc } => write!(f, "pc {pc} outside program"),
            M4Error::Misaligned { addr, pc } => {
                write!(f, "misaligned access to {addr:#010x} at instruction {pc}")
            }
            M4Error::BadStoreWidth { pc } => {
                write!(f, "signed width on store at instruction {pc}")
            }
            M4Error::CycleLimit { limit } => write!(f, "cycle limit of {limit} exceeded"),
        }
    }
}

impl std::error::Error for M4Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            M4Error::Bus(e) => Some(e),
            M4Error::Code(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BusError> for M4Error {
    fn from(e: BusError) -> M4Error {
        M4Error::Bus(e)
    }
}

impl From<crate::code::CodeError> for M4Error {
    fn from(e: crate::code::CodeError) -> M4Error {
        M4Error::Code(e)
    }
}

/// NZCV condition flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Negative.
    pub n: bool,
    /// Zero.
    pub z: bool,
    /// Carry / no-borrow.
    pub c: bool,
    /// Overflow.
    pub v: bool,
}

impl Flags {
    pub(crate) fn from_sub(a: u32, b: u32) -> Flags {
        let r = a.wrapping_sub(b);
        Flags {
            n: (r as i32) < 0,
            z: r == 0,
            c: a >= b,
            v: (((a ^ b) & (a ^ r)) >> 31) != 0,
        }
    }

    /// Evaluates a condition code against these flags.
    #[must_use]
    pub fn check(self, cond: Cond) -> bool {
        match cond {
            Cond::Al => true,
            Cond::Eq => self.z,
            Cond::Ne => !self.z,
            Cond::Lt => self.n != self.v,
            Cond::Ge => self.n == self.v,
            Cond::Gt => !self.z && self.n == self.v,
            Cond::Le => self.z || self.n != self.v,
            Cond::Hs => self.c,
            Cond::Lo => !self.c,
            Cond::Mi => self.n,
            Cond::Pl => !self.n,
        }
    }
}

/// Summary of a [`CortexM4::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Total cycles consumed.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
}

/// An ARM Cortex-M4F core (integer + single-precision VFP).
///
/// Programs are lists of [`ThumbInstr`]; the program counter is an index
/// into that list. Data memory is any [`iw_rv32::Bus`].
///
/// # Examples
///
/// ```
/// use iw_armv7m::{CortexM4, CortexM4Timing, asm::ThumbAsm, R};
/// use iw_rv32::Ram;
/// let mut asm = ThumbAsm::new();
/// asm.li(R::R0, 6);
/// asm.li(R::R1, 7);
/// asm.mul(R::R0, R::R0, R::R1);
/// asm.bkpt();
/// let program = asm.finish()?;
/// let mut cpu = CortexM4::new();
/// let mut ram = Ram::new(0, 64);
/// cpu.run(&program, &mut ram, &CortexM4Timing::default(), 1_000)?;
/// assert_eq!(cpu.reg(R::R0), 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CortexM4 {
    pub(crate) r: [u32; 15],
    pub(crate) s: [u32; 32],
    pub(crate) flags: Flags,
    pub(crate) fpscr: Flags,
    pub(crate) pc: usize,
    pub(crate) halted: bool,
    pub(crate) retired: u64,
    pub(crate) last_was_load: bool,
    pub(crate) profile: ExecProfile,
}

impl Default for CortexM4 {
    fn default() -> CortexM4 {
        CortexM4::new()
    }
}

impl CortexM4 {
    /// Creates a core with all registers zeroed and `pc = 0`.
    #[must_use]
    pub fn new() -> CortexM4 {
        CortexM4 {
            r: [0; 15],
            s: [0; 32],
            flags: Flags::default(),
            fpscr: Flags::default(),
            pc: 0,
            halted: false,
            retired: 0,
            last_was_load: false,
            profile: ExecProfile::new(),
        }
    }

    /// Reads a core register.
    #[must_use]
    pub fn reg(&self, r: R) -> u32 {
        self.r[r.index() as usize]
    }

    /// Writes a core register.
    pub fn set_reg(&mut self, r: R, value: u32) {
        self.r[r.index() as usize] = value;
    }

    /// Reads an FPU register as `f32`.
    #[must_use]
    pub fn sreg(&self, s: S) -> f32 {
        f32::from_bits(self.s[s.index() as usize])
    }

    /// Writes an FPU register from `f32`.
    pub fn set_sreg(&mut self, s: S, value: f32) {
        self.s[s.index() as usize] = value.to_bits();
    }

    /// Current program counter (instruction index).
    #[must_use]
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Sets the program counter and clears the halted state.
    pub fn set_pc(&mut self, pc: usize) {
        self.pc = pc;
        self.halted = false;
    }

    /// Current APSR flags.
    #[must_use]
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// `true` once `bkpt` retired.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Instructions retired so far.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Per-class execution profile accumulated so far.
    #[must_use]
    pub fn profile(&self) -> &ExecProfile {
        &self.profile
    }

    /// Clears the execution profile.
    pub fn reset_profile(&mut self) {
        self.profile = ExecProfile::new();
    }

    fn ls_width(width: LsWidth) -> MemWidth {
        match width {
            LsWidth::B | LsWidth::Sb => MemWidth::B,
            LsWidth::H | LsWidth::Sh => MemWidth::H,
            LsWidth::W => MemWidth::W,
        }
    }

    /// Executes one instruction from a pre-decoded program; returns its
    /// cycle cost, or `None` if the core is already halted (halt is a
    /// terminal state, not a retired instruction).
    ///
    /// # Errors
    ///
    /// See [`M4Error`].
    pub fn step<B: Bus>(
        &mut self,
        program: &[ThumbInstr],
        bus: &mut B,
        t: &CortexM4Timing,
    ) -> Result<Option<u32>, M4Error> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let instr = *program.get(pc).ok_or(M4Error::PcOutOfRange { pc })?;
        self.exec_decoded(instr, pc, pc + 1, bus, t).map(Some)
    }

    /// Executes an already-decoded instruction.
    ///
    /// `pc` is the instruction's own position and `next_seq` the
    /// fall-through position — instruction indices when executing a
    /// `&[ThumbInstr]` slice, halfword offsets when executing encoded
    /// code (see [`crate::code`]). Branch targets inside `instr` must use
    /// the same unit.
    ///
    /// # Errors
    ///
    /// See [`M4Error`].
    pub fn exec_decoded<B: Bus>(
        &mut self,
        instr: ThumbInstr,
        pc: usize,
        next_seq: usize,
        bus: &mut B,
        t: &CortexM4Timing,
    ) -> Result<u32, M4Error> {
        let mut next_pc = next_seq;
        // The M4 AHB pipeline lets back-to-back loads issue every cycle
        // after the first: model as a 1-cycle discount on a load that
        // immediately follows another load.
        let load_cost = if self.last_was_load {
            t.ldr_pipelined
        } else {
            t.ldr
        };
        let vload_cost = if self.last_was_load {
            t.vldr_pipelined
        } else {
            t.vldr
        };
        self.last_was_load = instr.is_load();

        let cycles = match instr {
            ThumbInstr::Movw { rd, imm } => {
                self.set_reg(rd, imm.into());
                t.alu
            }
            ThumbInstr::Movt { rd, imm } => {
                let v = (self.reg(rd) & 0xffff) | (u32::from(imm) << 16);
                self.set_reg(rd, v);
                t.alu
            }
            ThumbInstr::MovReg { rd, rm } => {
                self.set_reg(rd, self.reg(rm));
                t.alu
            }
            ThumbInstr::Dp { op, rd, rn, rm } => {
                let a = self.reg(rn);
                let b = self.reg(rm);
                let (v, cost) = match op {
                    DpOp::Add => (a.wrapping_add(b), t.alu),
                    DpOp::Sub => (a.wrapping_sub(b), t.alu),
                    DpOp::And => (a & b, t.alu),
                    DpOp::Orr => (a | b, t.alu),
                    DpOp::Eor => (a ^ b, t.alu),
                    DpOp::Lsl => (a.wrapping_shl(b & 0xff), t.alu),
                    DpOp::Lsr => {
                        let sh = b & 0xff;
                        (if sh >= 32 { 0 } else { a >> sh }, t.alu)
                    }
                    DpOp::Asr => {
                        let sh = (b & 0xff).min(31);
                        (((a as i32) >> sh) as u32, t.alu)
                    }
                    DpOp::Mul => (a.wrapping_mul(b), t.mul),
                    DpOp::Sdiv => {
                        let (a, b) = (a as i32, b as i32);
                        let v = if b == 0 {
                            0
                        } else if a == i32::MIN && b == -1 {
                            a as u32
                        } else {
                            (a / b) as u32
                        };
                        (v, t.sdiv)
                    }
                    DpOp::Udiv => (a.checked_div(b).unwrap_or(0), t.sdiv),
                };
                self.set_reg(rd, v);
                cost
            }
            ThumbInstr::AddImm { rd, rn, imm } => {
                self.set_reg(rd, self.reg(rn).wrapping_add(imm as u32));
                t.alu
            }
            ThumbInstr::SubsImm { rd, rn, imm } => {
                let a = self.reg(rn);
                self.flags = Flags::from_sub(a, imm as u32);
                self.set_reg(rd, a.wrapping_sub(imm as u32));
                t.alu
            }
            ThumbInstr::LslImm { rd, rm, shamt } => {
                self.set_reg(rd, self.reg(rm) << shamt);
                t.alu
            }
            ThumbInstr::LsrImm { rd, rm, shamt } => {
                self.set_reg(rd, self.reg(rm) >> shamt);
                t.alu
            }
            ThumbInstr::AsrImm { rd, rm, shamt } => {
                self.set_reg(rd, ((self.reg(rm) as i32) >> shamt) as u32);
                t.alu
            }
            ThumbInstr::Mla { rd, rn, rm, ra } => {
                let v = self
                    .reg(ra)
                    .wrapping_add(self.reg(rn).wrapping_mul(self.reg(rm)));
                self.set_reg(rd, v);
                t.mla
            }
            ThumbInstr::Mls { rd, rn, rm, ra } => {
                let v = self
                    .reg(ra)
                    .wrapping_sub(self.reg(rn).wrapping_mul(self.reg(rm)));
                self.set_reg(rd, v);
                t.mla
            }
            ThumbInstr::Smull { rdlo, rdhi, rn, rm } => {
                let p = i64::from(self.reg(rn) as i32) * i64::from(self.reg(rm) as i32);
                self.set_reg(rdlo, p as u32);
                self.set_reg(rdhi, (p >> 32) as u32);
                t.smull
            }
            ThumbInstr::Smlal { rdlo, rdhi, rn, rm } => {
                let acc = ((u64::from(self.reg(rdhi)) << 32) | u64::from(self.reg(rdlo))) as i64;
                let p = i64::from(self.reg(rn) as i32) * i64::from(self.reg(rm) as i32);
                let v = acc.wrapping_add(p) as u64;
                self.set_reg(rdlo, v as u32);
                self.set_reg(rdhi, (v >> 32) as u32);
                t.smull
            }
            ThumbInstr::Smlad { rd, rn, rm, ra } => {
                let a = self.reg(rn);
                let b = self.reg(rm);
                let p0 = i32::from(a as u16 as i16) * i32::from(b as u16 as i16);
                let p1 = i32::from((a >> 16) as u16 as i16) * i32::from((b >> 16) as u16 as i16);
                let v = (self.reg(ra) as i32).wrapping_add(p0.wrapping_add(p1)) as u32;
                self.set_reg(rd, v);
                t.mla
            }
            ThumbInstr::Ssat { rd, sat, rn } => {
                let a = self.reg(rn) as i32;
                let hi = (1i32 << (sat - 1)) - 1;
                let lo = -(1i32 << (sat - 1));
                self.set_reg(rd, a.clamp(lo, hi) as u32);
                t.alu
            }
            ThumbInstr::Ldr {
                width,
                rt,
                rn,
                offset,
                mode,
            } => {
                let base = self.reg(rn);
                let addr = match mode {
                    AddrMode::Offset => base.wrapping_add(offset as u32),
                    AddrMode::PostInc => base,
                };
                let w = Self::ls_width(width);
                if addr % w.bytes() != 0 {
                    return Err(M4Error::Misaligned { addr, pc });
                }
                let raw = bus.load(addr, w)?;
                let v = match width {
                    LsWidth::Sb => raw as u8 as i8 as i32 as u32,
                    LsWidth::Sh => raw as u16 as i16 as i32 as u32,
                    _ => raw,
                };
                self.set_reg(rt, v);
                if mode == AddrMode::PostInc {
                    // Post-index writeback; if rt == rn the loaded value
                    // wins (writeback to the same register is unpredictable
                    // on real hardware — we resolve it deterministically).
                    if rt != rn {
                        self.set_reg(rn, base.wrapping_add(offset as u32));
                    }
                }
                load_cost
            }
            ThumbInstr::Str {
                width,
                rt,
                rn,
                offset,
                mode,
            } => {
                if matches!(width, LsWidth::Sb | LsWidth::Sh) {
                    return Err(M4Error::BadStoreWidth { pc });
                }
                let base = self.reg(rn);
                let addr = match mode {
                    AddrMode::Offset => base.wrapping_add(offset as u32),
                    AddrMode::PostInc => base,
                };
                let w = Self::ls_width(width);
                if addr % w.bytes() != 0 {
                    return Err(M4Error::Misaligned { addr, pc });
                }
                bus.store(addr, w, self.reg(rt))?;
                if mode == AddrMode::PostInc {
                    self.set_reg(rn, base.wrapping_add(offset as u32));
                }
                t.str
            }
            ThumbInstr::Cmp { rn, rm } => {
                self.flags = Flags::from_sub(self.reg(rn), self.reg(rm));
                t.alu
            }
            ThumbInstr::CmpImm { rn, imm } => {
                self.flags = Flags::from_sub(self.reg(rn), imm as u32);
                t.alu
            }
            ThumbInstr::B { cond, target } => {
                if self.flags.check(cond) {
                    next_pc = target;
                    t.branch_taken
                } else {
                    t.branch_not_taken
                }
            }
            ThumbInstr::Nop => t.alu,
            ThumbInstr::Bkpt => {
                self.halted = true;
                next_pc = pc;
                0
            }
            ThumbInstr::Vldr { sd, rn, offset } => {
                let addr = self.reg(rn).wrapping_add(offset as u32);
                if !addr.is_multiple_of(4) {
                    return Err(M4Error::Misaligned { addr, pc });
                }
                let raw = bus.load(addr, MemWidth::W)?;
                self.s[sd.index() as usize] = raw;
                vload_cost
            }
            ThumbInstr::VldrPost { sd, rn, offset } => {
                let addr = self.reg(rn);
                if !addr.is_multiple_of(4) {
                    return Err(M4Error::Misaligned { addr, pc });
                }
                let raw = bus.load(addr, MemWidth::W)?;
                self.s[sd.index() as usize] = raw;
                self.set_reg(rn, addr.wrapping_add(offset as u32));
                vload_cost
            }
            ThumbInstr::Vstr { sd, rn, offset } => {
                let addr = self.reg(rn).wrapping_add(offset as u32);
                if !addr.is_multiple_of(4) {
                    return Err(M4Error::Misaligned { addr, pc });
                }
                bus.store(addr, MemWidth::W, self.s[sd.index() as usize])?;
                t.str
            }
            ThumbInstr::VmovF { sd, sm } => {
                self.s[sd.index() as usize] = self.s[sm.index() as usize];
                t.alu
            }
            ThumbInstr::VmovToS { sd, rt } => {
                self.s[sd.index() as usize] = self.reg(rt);
                t.alu
            }
            ThumbInstr::VmovFromS { rt, sm } => {
                self.set_reg(rt, self.s[sm.index() as usize]);
                t.alu
            }
            ThumbInstr::Vadd { sd, sn, sm } => {
                let v = self.sreg(sn) + self.sreg(sm);
                self.set_sreg(sd, v);
                t.vfp_alu
            }
            ThumbInstr::Vsub { sd, sn, sm } => {
                let v = self.sreg(sn) - self.sreg(sm);
                self.set_sreg(sd, v);
                t.vfp_alu
            }
            ThumbInstr::Vmul { sd, sn, sm } => {
                let v = self.sreg(sn) * self.sreg(sm);
                self.set_sreg(sd, v);
                t.vfp_alu
            }
            ThumbInstr::Vmla { sd, sn, sm } => {
                // VMLA.F32 is a chained multiply-add: round after the
                // multiply, then after the add (not fused).
                let v = self.sreg(sd) + self.sreg(sn) * self.sreg(sm);
                self.set_sreg(sd, v);
                t.vmla
            }
            ThumbInstr::Vdiv { sd, sn, sm } => {
                let v = self.sreg(sn) / self.sreg(sm);
                self.set_sreg(sd, v);
                t.vdiv
            }
            ThumbInstr::Vabs { sd, sm } => {
                let v = self.sreg(sm).abs();
                self.set_sreg(sd, v);
                t.vfp_alu
            }
            ThumbInstr::Vneg { sd, sm } => {
                let v = -self.sreg(sm);
                self.set_sreg(sd, v);
                t.vfp_alu
            }
            ThumbInstr::VcvtF32S32 { sd, sm } => {
                let v = self.s[sm.index() as usize] as i32 as f32;
                self.set_sreg(sd, v);
                t.vfp_alu
            }
            ThumbInstr::VcvtS32F32 { sd, sm } => {
                let f = self.sreg(sm);
                let v = if f.is_nan() {
                    0
                } else if f >= i32::MAX as f32 {
                    i32::MAX
                } else if f <= i32::MIN as f32 {
                    i32::MIN
                } else {
                    f.trunc() as i32
                };
                self.s[sd.index() as usize] = v as u32;
                t.vfp_alu
            }
            ThumbInstr::Vcmp { sn, sm } => {
                let a = self.sreg(sn);
                let b = self.sreg(sm);
                self.fpscr = if a.is_nan() || b.is_nan() {
                    Flags {
                        n: false,
                        z: false,
                        c: true,
                        v: true,
                    }
                } else if a == b {
                    Flags {
                        n: false,
                        z: true,
                        c: true,
                        v: false,
                    }
                } else if a < b {
                    Flags {
                        n: true,
                        z: false,
                        c: false,
                        v: false,
                    }
                } else {
                    Flags {
                        n: false,
                        z: false,
                        c: true,
                        v: false,
                    }
                };
                t.vfp_alu
            }
            ThumbInstr::Vmrs => {
                self.flags = self.fpscr;
                t.alu
            }
        };

        let class = match instr {
            ThumbInstr::Dp { op, .. } => match op {
                DpOp::Mul => InstrClass::Mul,
                DpOp::Sdiv | DpOp::Udiv => InstrClass::Div,
                _ => InstrClass::Alu,
            },
            ThumbInstr::Movw { .. }
            | ThumbInstr::Movt { .. }
            | ThumbInstr::MovReg { .. }
            | ThumbInstr::AddImm { .. }
            | ThumbInstr::SubsImm { .. }
            | ThumbInstr::LslImm { .. }
            | ThumbInstr::LsrImm { .. }
            | ThumbInstr::AsrImm { .. }
            | ThumbInstr::Cmp { .. }
            | ThumbInstr::CmpImm { .. }
            | ThumbInstr::Nop => InstrClass::Alu,
            ThumbInstr::Mla { .. }
            | ThumbInstr::Mls { .. }
            | ThumbInstr::Smull { .. }
            | ThumbInstr::Smlal { .. }
            | ThumbInstr::Smlad { .. }
            | ThumbInstr::Ssat { .. } => InstrClass::Dsp,
            ThumbInstr::Ldr { .. } => InstrClass::Load,
            ThumbInstr::Str { .. } => InstrClass::Store,
            ThumbInstr::B { .. } => {
                if next_pc != next_seq {
                    InstrClass::BranchTaken
                } else {
                    InstrClass::BranchNotTaken
                }
            }
            ThumbInstr::Bkpt => InstrClass::System,
            ThumbInstr::Vldr { .. } | ThumbInstr::VldrPost { .. } => InstrClass::Load,
            ThumbInstr::Vstr { .. } => InstrClass::Store,
            ThumbInstr::VmovF { .. }
            | ThumbInstr::VmovToS { .. }
            | ThumbInstr::VmovFromS { .. }
            | ThumbInstr::Vadd { .. }
            | ThumbInstr::Vsub { .. }
            | ThumbInstr::Vmul { .. }
            | ThumbInstr::Vmla { .. }
            | ThumbInstr::Vdiv { .. }
            | ThumbInstr::Vabs { .. }
            | ThumbInstr::Vneg { .. }
            | ThumbInstr::VcvtF32S32 { .. }
            | ThumbInstr::VcvtS32F32 { .. }
            | ThumbInstr::Vcmp { .. }
            | ThumbInstr::Vmrs => InstrClass::Float,
        };
        self.profile.record(class, cycles);
        self.pc = next_pc;
        self.retired += 1;
        Ok(cycles)
    }

    /// Runs until `bkpt` over a pre-decoded program.
    ///
    /// A `&[ThumbInstr]` program *is* the decoded-instruction cache for
    /// this core: nRF52832 code executes from flash, which data stores
    /// cannot reach, so the whole program is decoded once up front (see
    /// [`crate::code::DecodedProgram`]) and never invalidated. The
    /// per-halfword decoding baseline is [`CortexM4::run_code`].
    ///
    /// # Errors
    ///
    /// Returns [`M4Error::CycleLimit`] if `max_cycles` elapses first, or any
    /// fault from [`CortexM4::step`].
    pub fn run<B: Bus>(
        &mut self,
        program: &[ThumbInstr],
        bus: &mut B,
        t: &CortexM4Timing,
        max_cycles: u64,
    ) -> Result<RunResult, M4Error> {
        self.run_sink(
            program,
            bus,
            t,
            max_cycles,
            &mut NoopSink,
            TrackId::default(),
        )
    }

    /// [`CortexM4::run`] with an instrumentation sink attached.
    ///
    /// With the default [`NoopSink`] every emission site folds away and
    /// this *is* the pre-decoded hot loop. With a recording sink it
    /// emits one PC sample per retired instruction (PC in *instruction
    /// index* units — the same units [`crate::asm::ThumbAsm::mark`]
    /// records symbols in) plus a single `exec-batch` span covering the
    /// whole run: nRF52832 code executes from flash, which stores cannot
    /// reach, so the pre-decoded program is never invalidated and the
    /// batch never breaks.
    ///
    /// # Errors
    ///
    /// Same as [`CortexM4::run`].
    pub fn run_sink<B: Bus, S: TraceSink>(
        &mut self,
        program: &[ThumbInstr],
        bus: &mut B,
        t: &CortexM4Timing,
        max_cycles: u64,
        sink: &mut S,
        track: TrackId,
    ) -> Result<RunResult, M4Error> {
        let mut cycles = 0u64;
        let mut instructions = 0u64;
        loop {
            let pc = self.pc;
            let Some(cost) = self.step(program, bus, t)? else {
                break;
            };
            if S::ENABLED {
                sink.pc_sample(track, pc as u32, cycles, cost);
            }
            cycles += u64::from(cost);
            instructions += 1;
            if cycles > max_cycles {
                return Err(M4Error::CycleLimit { limit: max_cycles });
            }
        }
        if S::ENABLED && cycles > 0 {
            sink.span(track, "exec-batch", 0, cycles);
        }
        Ok(RunResult {
            cycles,
            instructions,
        })
    }

    /// Runs until `bkpt` over *encoded* code, decoding every dynamic
    /// instruction — the uncached reference for [`CortexM4::run`] on a
    /// [`crate::code::DecodedProgram`]. The program counter is in
    /// halfword units here.
    ///
    /// # Errors
    ///
    /// As [`CortexM4::run`], plus [`M4Error::Code`] for malformed code.
    pub fn run_code<B: Bus>(
        &mut self,
        code: &[u16],
        bus: &mut B,
        t: &CortexM4Timing,
        max_cycles: u64,
    ) -> Result<RunResult, M4Error> {
        let mut cycles = 0u64;
        let mut instructions = 0u64;
        while !self.halted {
            let pc = self.pc;
            if pc >= code.len() {
                return Err(M4Error::PcOutOfRange { pc });
            }
            let (instr, len) = crate::code::decode_at(code, pc)?;
            let cost = self.exec_decoded(instr, pc, pc + len, bus, t)?;
            cycles += u64::from(cost);
            instructions += 1;
            if cycles > max_cycles {
                return Err(M4Error::CycleLimit { limit: max_cycles });
            }
        }
        Ok(RunResult {
            cycles,
            instructions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ThumbAsm;
    use iw_rv32::Ram;

    fn run(
        asm: &ThumbAsm,
        setup: impl FnOnce(&mut CortexM4, &mut Ram),
    ) -> (CortexM4, Ram, RunResult) {
        let program = asm.finish().unwrap();
        let mut cpu = CortexM4::new();
        let mut ram = Ram::new(0, 4096);
        setup(&mut cpu, &mut ram);
        let res = cpu
            .run(&program, &mut ram, &CortexM4Timing::default(), 1_000_000)
            .unwrap();
        (cpu, ram, res)
    }

    #[test]
    fn movw_movt_builds_constants() {
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, 0xdead_beefu32 as i32);
        asm.li(R::R1, 42);
        asm.bkpt();
        let (cpu, _, _) = run(&asm, |_, _| {});
        assert_eq!(cpu.reg(R::R0), 0xdead_beef);
        assert_eq!(cpu.reg(R::R1), 42);
    }

    #[test]
    fn mla_and_smlal() {
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, -3);
        asm.li(R::R1, 1000);
        asm.li(R::R2, 7);
        asm.mla(R::R3, R::R0, R::R1, R::R2); // 7 - 3000
                                             // 64-bit accumulate: r4:r5 = -1, add 2*3
        asm.li(R::R4, -1);
        asm.li(R::R5, -1);
        asm.li(R::R6, 2);
        asm.li(R::R7, 3);
        asm.emit(ThumbInstr::Smlal {
            rdlo: R::R4,
            rdhi: R::R5,
            rn: R::R6,
            rm: R::R7,
        });
        asm.bkpt();
        let (cpu, _, _) = run(&asm, |_, _| {});
        assert_eq!(cpu.reg(R::R3) as i32, -2993);
        assert_eq!(cpu.reg(R::R4), 5);
        assert_eq!(cpu.reg(R::R5), 0);
    }

    #[test]
    fn smlad_dual_mac() {
        let mut asm = ThumbAsm::new();
        // rn = (3, -2), rm = (10, 100): 3·10 + (-2)·100 = -170; ra = 1000.
        asm.li(R::R0, ((-2i16 as u16 as u32) << 16 | 3) as i32);
        asm.li(R::R1, (100u32 << 16 | 10) as i32);
        asm.li(R::R2, 1000);
        asm.emit(ThumbInstr::Smlad {
            rd: R::R3,
            rn: R::R0,
            rm: R::R1,
            ra: R::R2,
        });
        asm.bkpt();
        let (cpu, _, _) = run(&asm, |_, _| {});
        assert_eq!(cpu.reg(R::R3) as i32, 830);
    }

    #[test]
    fn ssat_saturates() {
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, 100_000);
        asm.emit(ThumbInstr::Ssat {
            rd: R::R1,
            sat: 16,
            rn: R::R0,
        });
        asm.li(R::R0, -100_000);
        asm.emit(ThumbInstr::Ssat {
            rd: R::R2,
            sat: 16,
            rn: R::R0,
        });
        asm.bkpt();
        let (cpu, _, _) = run(&asm, |_, _| {});
        assert_eq!(cpu.reg(R::R1) as i32, 32767);
        assert_eq!(cpu.reg(R::R2) as i32, -32768);
    }

    #[test]
    fn countdown_loop_with_flags() {
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, 5);
        asm.li(R::R1, 0);
        let top = asm.here();
        asm.add_imm(R::R1, R::R1, 2);
        asm.subs(R::R0, R::R0, 1);
        asm.b_to(Cond::Ne, top);
        asm.bkpt();
        let (cpu, _, _) = run(&asm, |_, _| {});
        assert_eq!(cpu.reg(R::R1), 10);
    }

    #[test]
    fn signed_loads() {
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, 0x100);
        asm.ldr(LsWidth::Sh, R::R1, R::R0, 0);
        asm.ldr(LsWidth::H, R::R2, R::R0, 0);
        asm.ldr(LsWidth::Sb, R::R3, R::R0, 0);
        asm.bkpt();
        let (cpu, _, _) = run(&asm, |_, ram| {
            ram.write_bytes(0x100, &[0xfe, 0xff]);
        });
        assert_eq!(cpu.reg(R::R1) as i32, -2);
        assert_eq!(cpu.reg(R::R2), 0xfffe);
        assert_eq!(cpu.reg(R::R3) as i32, -2);
    }

    #[test]
    fn post_increment_walks() {
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, 0x200);
        asm.ldr_post(LsWidth::W, R::R1, R::R0, 4);
        asm.ldr_post(LsWidth::W, R::R2, R::R0, 4);
        asm.bkpt();
        let (cpu, _, _) = run(&asm, |_, ram| {
            ram.write_bytes(0x200, &11u32.to_le_bytes());
            ram.write_bytes(0x204, &22u32.to_le_bytes());
        });
        assert_eq!(cpu.reg(R::R1), 11);
        assert_eq!(cpu.reg(R::R2), 22);
        assert_eq!(cpu.reg(R::R0), 0x208);
    }

    #[test]
    fn load_pipelining_discount() {
        // Two adjacent loads: second costs 1 instead of 2.
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, 0x100); // 2 instrs (movw+movt? 0x100 has no high -> 1 movw)
        asm.ldr(LsWidth::W, R::R1, R::R0, 0);
        asm.ldr(LsWidth::W, R::R2, R::R0, 4);
        asm.bkpt();
        let (_, _, res) = run(&asm, |_, _| {});
        // movw(1) + ldr(2) + ldr(1) = 4 cycles.
        assert_eq!(res.cycles, 4);
    }

    #[test]
    fn float_mac_and_compare() {
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, 0x100);
        asm.vldr(S::new(0), R::R0, 0); // 1.5
        asm.vldr(S::new(1), R::R0, 4); // 2.0
        asm.vldr(S::new(2), R::R0, 8); // 10.0
        asm.emit(ThumbInstr::Vmla {
            sd: S::new(2),
            sn: S::new(0),
            sm: S::new(1),
        }); // 13.0
        asm.emit(ThumbInstr::Vcmp {
            sn: S::new(2),
            sm: S::new(0),
        });
        asm.emit(ThumbInstr::Vmrs);
        let gt = asm.new_label();
        asm.b_to(Cond::Gt, gt);
        asm.li(R::R5, 0);
        asm.bind(gt);
        asm.li(R::R5, 1);
        asm.bkpt();
        let (cpu, _, _) = run(&asm, |_, ram| {
            ram.write_bytes(0x100, &1.5f32.to_bits().to_le_bytes());
            ram.write_bytes(0x104, &2.0f32.to_bits().to_le_bytes());
            ram.write_bytes(0x108, &10.0f32.to_bits().to_le_bytes());
        });
        assert_eq!(cpu.sreg(S::new(2)), 13.0);
        assert_eq!(cpu.reg(R::R5), 1);
    }

    #[test]
    fn sdiv_truncates_and_handles_zero() {
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, -7);
        asm.li(R::R1, 2);
        asm.dp(DpOp::Sdiv, R::R2, R::R0, R::R1); // -3
        asm.li(R::R3, 0);
        asm.dp(DpOp::Sdiv, R::R4, R::R0, R::R3); // 0 (ARM semantics)
        asm.bkpt();
        let (cpu, _, _) = run(&asm, |_, _| {});
        assert_eq!(cpu.reg(R::R2) as i32, -3);
        assert_eq!(cpu.reg(R::R4), 0);
    }

    #[test]
    fn vcvt_roundtrip() {
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, -42);
        asm.emit(ThumbInstr::VmovToS {
            sd: S::new(0),
            rt: R::R0,
        });
        asm.emit(ThumbInstr::VcvtF32S32 {
            sd: S::new(1),
            sm: S::new(0),
        });
        asm.emit(ThumbInstr::VcvtS32F32 {
            sd: S::new(2),
            sm: S::new(1),
        });
        asm.emit(ThumbInstr::VmovFromS {
            rt: R::R1,
            sm: S::new(2),
        });
        asm.bkpt();
        let (cpu, _, _) = run(&asm, |_, _| {});
        assert_eq!(cpu.sreg(S::new(1)), -42.0);
        assert_eq!(cpu.reg(R::R1) as i32, -42);
    }

    #[test]
    fn running_off_the_end_is_an_error() {
        let asm = ThumbAsm::new();
        let program = asm.finish().unwrap();
        let mut cpu = CortexM4::new();
        let mut ram = Ram::new(0, 16);
        let err = cpu
            .run(&program, &mut ram, &CortexM4Timing::default(), 100)
            .unwrap_err();
        assert!(matches!(err, M4Error::PcOutOfRange { pc: 0 }));
    }
}
