//! Semantic instruction model for the ARMv7E-M (Thumb-2) subset.
//!
//! Unlike the RISC-V side ([`iw_rv32`]), this simulator models instructions
//! at the *semantic* level: programs are lists of [`ThumbInstr`], branch
//! targets are instruction indices, and no binary encoding is performed.
//! This is a documented simplification — the InfiniWolf evaluation only
//! needs the ARM core's cycle counts and results for hand-written DSP
//! kernels, both of which are fully determined by instruction semantics and
//! the per-instruction [`crate::CortexM4Timing`] model.

use core::fmt;

/// A core register `r0`–`r12`, `sp`, `lr`.
///
/// The program counter is not addressable in this model (branches use
/// labels/indices instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct R(u8);

impl R {
    /// Register `r0`.
    pub const R0: R = R(0);
    /// Register `r1`.
    pub const R1: R = R(1);
    /// Register `r2`.
    pub const R2: R = R(2);
    /// Register `r3`.
    pub const R3: R = R(3);
    /// Register `r4`.
    pub const R4: R = R(4);
    /// Register `r5`.
    pub const R5: R = R(5);
    /// Register `r6`.
    pub const R6: R = R(6);
    /// Register `r7`.
    pub const R7: R = R(7);
    /// Register `r8`.
    pub const R8: R = R(8);
    /// Register `r9`.
    pub const R9: R = R(9);
    /// Register `r10`.
    pub const R10: R = R(10);
    /// Register `r11`.
    pub const R11: R = R(11);
    /// Register `r12`.
    pub const R12: R = R(12);
    /// Stack pointer.
    pub const SP: R = R(13);
    /// Link register.
    pub const LR: R = R(14);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 15`.
    #[must_use]
    pub const fn new(index: u8) -> R {
        assert!(index < 15, "core register index out of range");
        R(index)
    }

    /// Register index.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for R {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            13 => f.write_str("sp"),
            14 => f.write_str("lr"),
            n => write!(f, "r{n}"),
        }
    }
}

/// A single-precision FPU register `s0`–`s31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct S(u8);

impl S {
    /// Creates an FPU register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub const fn new(index: u8) -> S {
        assert!(index < 32, "fpu register index out of range");
        S(index)
    }

    /// Register index.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for S {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Integer data-processing operation (register-register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DpOp {
    /// `add rd, rn, rm`
    Add,
    /// `sub rd, rn, rm`
    Sub,
    /// `and rd, rn, rm`
    And,
    /// `orr rd, rn, rm`
    Orr,
    /// `eor rd, rn, rm`
    Eor,
    /// `lsl rd, rn, rm`
    Lsl,
    /// `lsr rd, rn, rm`
    Lsr,
    /// `asr rd, rn, rm`
    Asr,
    /// `mul rd, rn, rm`
    Mul,
    /// `sdiv rd, rn, rm`
    Sdiv,
    /// `udiv rd, rn, rm`
    Udiv,
}

/// Load/store width with signedness (loads only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LsWidth {
    /// `ldrb`/`strb`
    B,
    /// `ldrsb`
    Sb,
    /// `ldrh`/`strh`
    H,
    /// `ldrsh`
    Sh,
    /// `ldr`/`str`
    W,
}

impl LsWidth {
    /// Access size in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            LsWidth::B | LsWidth::Sb => 1,
            LsWidth::H | LsWidth::Sh => 2,
            LsWidth::W => 4,
        }
    }
}

/// Addressing mode for loads/stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrMode {
    /// `[rn, #offset]` — no writeback.
    Offset,
    /// `[rn], #offset` — post-indexed: access at `rn`, then `rn += offset`.
    PostInc,
}

/// Branch condition codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Always.
    Al,
    /// Equal (Z).
    Eq,
    /// Not equal (!Z).
    Ne,
    /// Signed less than (N != V).
    Lt,
    /// Signed greater or equal (N == V).
    Ge,
    /// Signed greater than (!Z && N == V).
    Gt,
    /// Signed less or equal (Z || N != V).
    Le,
    /// Unsigned higher or same (C).
    Hs,
    /// Unsigned lower (!C).
    Lo,
    /// Negative (N).
    Mi,
    /// Positive or zero (!N).
    Pl,
}

/// One Thumb-2 instruction at semantic level. Branch targets are indices
/// into the program's instruction list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // operand fields follow ARM naming (rd/rn/rm/ra)
pub enum ThumbInstr {
    /// `movw rd, #imm16` — writes the low half, clears the high half.
    Movw { rd: R, imm: u16 },
    /// `movt rd, #imm16` — writes the high half, keeps the low half.
    Movt { rd: R, imm: u16 },
    /// `mov rd, rm`
    MovReg { rd: R, rm: R },
    /// Register-register data processing.
    Dp { op: DpOp, rd: R, rn: R, rm: R },
    /// `add rd, rn, #imm` / `sub` for negative `imm`.
    AddImm { rd: R, rn: R, imm: i32 },
    /// `subs rd, rn, #imm` — subtract and set flags (loop counters).
    SubsImm { rd: R, rn: R, imm: i32 },
    /// `lsl rd, rm, #shamt`
    LslImm { rd: R, rm: R, shamt: u8 },
    /// `lsr rd, rm, #shamt`
    LsrImm { rd: R, rm: R, shamt: u8 },
    /// `asr rd, rm, #shamt`
    AsrImm { rd: R, rm: R, shamt: u8 },
    /// `mla rd, rn, rm, ra` — `rd = ra + rn*rm` (low 32 bits).
    Mla { rd: R, rn: R, rm: R, ra: R },
    /// `mls rd, rn, rm, ra` — `rd = ra - rn*rm`.
    Mls { rd: R, rn: R, rm: R, ra: R },
    /// `smull rdlo, rdhi, rn, rm` — signed 64-bit multiply.
    Smull { rdlo: R, rdhi: R, rn: R, rm: R },
    /// `smlal rdlo, rdhi, rn, rm` — signed 64-bit multiply-accumulate.
    Smlal { rdlo: R, rdhi: R, rn: R, rm: R },
    /// `smlad rd, rn, rm, ra` — dual 16×16 multiply-accumulate:
    /// `rd = ra + rn[15:0]·rm[15:0] + rn[31:16]·rm[31:16]` (DSP extension).
    Smlad { rd: R, rn: R, rm: R, ra: R },
    /// `ssat rd, #sat, rn` — signed saturate to `sat` bits.
    Ssat { rd: R, sat: u8, rn: R },
    /// Load.
    Ldr {
        width: LsWidth,
        rt: R,
        rn: R,
        offset: i32,
        mode: AddrMode,
    },
    /// Store (signed widths invalid).
    Str {
        width: LsWidth,
        rt: R,
        rn: R,
        offset: i32,
        mode: AddrMode,
    },
    /// `cmp rn, rm` — sets NZCV.
    Cmp { rn: R, rm: R },
    /// `cmp rn, #imm`
    CmpImm { rn: R, imm: i32 },
    /// Conditional branch to an instruction index.
    B { cond: Cond, target: usize },
    /// `nop`
    Nop,
    /// `bkpt` — halts the simulated core.
    Bkpt,

    // ---- VFPv4 single precision (Cortex-M4F) ----
    /// `vldr.f32 sd, [rn, #offset]`
    Vldr { sd: S, rn: R, offset: i32 },
    /// `vldr.f32` post-indexed equivalent (`vldmia rn!, {sd}`).
    VldrPost { sd: S, rn: R, offset: i32 },
    /// `vstr.f32 sd, [rn, #offset]`
    Vstr { sd: S, rn: R, offset: i32 },
    /// `vmov.f32 sd, sm`
    VmovF { sd: S, sm: S },
    /// `vmov sd, rt` — int register to FPU register (bit pattern).
    VmovToS { sd: S, rt: R },
    /// `vmov rt, sm` — FPU register to int register (bit pattern).
    VmovFromS { rt: R, sm: S },
    /// `vadd.f32 sd, sn, sm`
    Vadd { sd: S, sn: S, sm: S },
    /// `vsub.f32 sd, sn, sm`
    Vsub { sd: S, sn: S, sm: S },
    /// `vmul.f32 sd, sn, sm`
    Vmul { sd: S, sn: S, sm: S },
    /// `vmla.f32 sd, sn, sm` — `sd += sn * sm` (chained, not fused).
    Vmla { sd: S, sn: S, sm: S },
    /// `vdiv.f32 sd, sn, sm`
    Vdiv { sd: S, sn: S, sm: S },
    /// `vabs.f32 sd, sm`
    Vabs { sd: S, sm: S },
    /// `vneg.f32 sd, sm`
    Vneg { sd: S, sm: S },
    /// `vcvt.f32.s32 sd, sm` — int to float.
    VcvtF32S32 { sd: S, sm: S },
    /// `vcvt.s32.f32 sd, sm` — float to int, round toward zero.
    VcvtS32F32 { sd: S, sm: S },
    /// `vcmp.f32 sn, sm` — sets FPSCR flags.
    Vcmp { sn: S, sm: S },
    /// `vmrs APSR_nzcv, fpscr` — copies FPSCR flags to APSR.
    Vmrs,
}

impl ThumbInstr {
    /// `true` for integer or FPU loads (used for the M4 load-pipelining
    /// timing discount).
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            ThumbInstr::Ldr { .. } | ThumbInstr::Vldr { .. } | ThumbInstr::VldrPost { .. }
        )
    }
}

impl fmt::Display for ThumbInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn ls_name(width: LsWidth, load: bool) -> &'static str {
            match (width, load) {
                (LsWidth::B, true) => "ldrb",
                (LsWidth::Sb, true) => "ldrsb",
                (LsWidth::H, true) => "ldrh",
                (LsWidth::Sh, true) => "ldrsh",
                (LsWidth::W, true) => "ldr",
                (LsWidth::B, false) => "strb",
                (LsWidth::H, false) => "strh",
                _ => "str",
            }
        }
        fn addr(f: &mut fmt::Formatter<'_>, rn: R, offset: i32, mode: AddrMode) -> fmt::Result {
            match mode {
                AddrMode::Offset => write!(f, "[{rn}, #{offset}]"),
                AddrMode::PostInc => write!(f, "[{rn}], #{offset}"),
            }
        }
        match *self {
            ThumbInstr::Movw { rd, imm } => write!(f, "movw {rd}, #{imm}"),
            ThumbInstr::Movt { rd, imm } => write!(f, "movt {rd}, #{imm}"),
            ThumbInstr::MovReg { rd, rm } => write!(f, "mov {rd}, {rm}"),
            ThumbInstr::Dp { op, rd, rn, rm } => {
                let name = match op {
                    DpOp::Add => "add",
                    DpOp::Sub => "sub",
                    DpOp::And => "and",
                    DpOp::Orr => "orr",
                    DpOp::Eor => "eor",
                    DpOp::Lsl => "lsl",
                    DpOp::Lsr => "lsr",
                    DpOp::Asr => "asr",
                    DpOp::Mul => "mul",
                    DpOp::Sdiv => "sdiv",
                    DpOp::Udiv => "udiv",
                };
                write!(f, "{name} {rd}, {rn}, {rm}")
            }
            ThumbInstr::AddImm { rd, rn, imm } => write!(f, "add {rd}, {rn}, #{imm}"),
            ThumbInstr::SubsImm { rd, rn, imm } => write!(f, "subs {rd}, {rn}, #{imm}"),
            ThumbInstr::LslImm { rd, rm, shamt } => write!(f, "lsl {rd}, {rm}, #{shamt}"),
            ThumbInstr::LsrImm { rd, rm, shamt } => write!(f, "lsr {rd}, {rm}, #{shamt}"),
            ThumbInstr::AsrImm { rd, rm, shamt } => write!(f, "asr {rd}, {rm}, #{shamt}"),
            ThumbInstr::Mla { rd, rn, rm, ra } => write!(f, "mla {rd}, {rn}, {rm}, {ra}"),
            ThumbInstr::Mls { rd, rn, rm, ra } => write!(f, "mls {rd}, {rn}, {rm}, {ra}"),
            ThumbInstr::Smull { rdlo, rdhi, rn, rm } => {
                write!(f, "smull {rdlo}, {rdhi}, {rn}, {rm}")
            }
            ThumbInstr::Smlal { rdlo, rdhi, rn, rm } => {
                write!(f, "smlal {rdlo}, {rdhi}, {rn}, {rm}")
            }
            ThumbInstr::Smlad { rd, rn, rm, ra } => {
                write!(f, "smlad {rd}, {rn}, {rm}, {ra}")
            }
            ThumbInstr::Ssat { rd, sat, rn } => write!(f, "ssat {rd}, #{sat}, {rn}"),
            ThumbInstr::Ldr {
                width,
                rt,
                rn,
                offset,
                mode,
            } => {
                write!(f, "{} {rt}, ", ls_name(width, true))?;
                addr(f, rn, offset, mode)
            }
            ThumbInstr::Str {
                width,
                rt,
                rn,
                offset,
                mode,
            } => {
                write!(f, "{} {rt}, ", ls_name(width, false))?;
                addr(f, rn, offset, mode)
            }
            ThumbInstr::Cmp { rn, rm } => write!(f, "cmp {rn}, {rm}"),
            ThumbInstr::CmpImm { rn, imm } => write!(f, "cmp {rn}, #{imm}"),
            ThumbInstr::B { cond, target } => {
                let suffix = match cond {
                    Cond::Al => "",
                    Cond::Eq => "eq",
                    Cond::Ne => "ne",
                    Cond::Lt => "lt",
                    Cond::Ge => "ge",
                    Cond::Gt => "gt",
                    Cond::Le => "le",
                    Cond::Hs => "hs",
                    Cond::Lo => "lo",
                    Cond::Mi => "mi",
                    Cond::Pl => "pl",
                };
                write!(f, "b{suffix} @{target}")
            }
            ThumbInstr::Nop => f.write_str("nop"),
            ThumbInstr::Bkpt => f.write_str("bkpt"),
            ThumbInstr::Vldr { sd, rn, offset } => {
                write!(f, "vldr.f32 {sd}, [{rn}, #{offset}]")
            }
            ThumbInstr::VldrPost { sd, rn, offset } => {
                write!(f, "vldmia {rn}!, {{{sd}}} ; +{offset}")
            }
            ThumbInstr::Vstr { sd, rn, offset } => {
                write!(f, "vstr.f32 {sd}, [{rn}, #{offset}]")
            }
            ThumbInstr::VmovF { sd, sm } => write!(f, "vmov.f32 {sd}, {sm}"),
            ThumbInstr::VmovToS { sd, rt } => write!(f, "vmov {sd}, {rt}"),
            ThumbInstr::VmovFromS { rt, sm } => write!(f, "vmov {rt}, {sm}"),
            ThumbInstr::Vadd { sd, sn, sm } => write!(f, "vadd.f32 {sd}, {sn}, {sm}"),
            ThumbInstr::Vsub { sd, sn, sm } => write!(f, "vsub.f32 {sd}, {sn}, {sm}"),
            ThumbInstr::Vmul { sd, sn, sm } => write!(f, "vmul.f32 {sd}, {sn}, {sm}"),
            ThumbInstr::Vmla { sd, sn, sm } => write!(f, "vmla.f32 {sd}, {sn}, {sm}"),
            ThumbInstr::Vdiv { sd, sn, sm } => write!(f, "vdiv.f32 {sd}, {sn}, {sm}"),
            ThumbInstr::Vabs { sd, sm } => write!(f, "vabs.f32 {sd}, {sm}"),
            ThumbInstr::Vneg { sd, sm } => write!(f, "vneg.f32 {sd}, {sm}"),
            ThumbInstr::VcvtF32S32 { sd, sm } => write!(f, "vcvt.f32.s32 {sd}, {sm}"),
            ThumbInstr::VcvtS32F32 { sd, sm } => write!(f, "vcvt.s32.f32 {sd}, {sm}"),
            ThumbInstr::Vcmp { sn, sm } => write!(f, "vcmp.f32 {sn}, {sm}"),
            ThumbInstr::Vmrs => f.write_str("vmrs APSR_nzcv, fpscr"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_display() {
        assert_eq!(R::R3.to_string(), "r3");
        assert_eq!(R::SP.to_string(), "sp");
        assert_eq!(S::new(7).to_string(), "s7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pc_is_not_addressable() {
        let _ = R::new(15);
    }

    #[test]
    fn load_classification() {
        let l = ThumbInstr::Ldr {
            width: LsWidth::W,
            rt: R::R0,
            rn: R::R1,
            offset: 0,
            mode: AddrMode::Offset,
        };
        assert!(l.is_load());
        assert!(!ThumbInstr::Nop.is_load());
    }
}
