//! Program builder for the Thumb-2 subset, with labels.

use crate::instr::{AddrMode, Cond, DpOp, LsWidth, ThumbInstr, R, S};

/// A code label (instruction index once bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Error produced by [`ThumbAsm::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnboundLabelError(Label);

impl core::fmt::Display for UnboundLabelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "label {:?} was never bound", self.0)
    }
}

impl std::error::Error for UnboundLabelError {}

#[derive(Debug, Clone, Copy)]
enum Item {
    Plain(ThumbInstr),
    BranchTo { cond: Cond, label: Label },
}

/// Builds a `Vec<ThumbInstr>` program with forward/backward labels.
///
/// # Examples
///
/// ```
/// use iw_armv7m::{asm::ThumbAsm, R, Cond};
/// let mut asm = ThumbAsm::new();
/// asm.li(R::R0, 3);
/// let top = asm.here();
/// asm.subs(R::R0, R::R0, 1);
/// asm.b_to(Cond::Ne, top);
/// asm.bkpt();
/// let program = asm.finish()?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), iw_armv7m::asm::UnboundLabelError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ThumbAsm {
    items: Vec<Item>,
    labels: Vec<Option<usize>>,
    symbols: Vec<(u32, String)>,
}

impl ThumbAsm {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> ThumbAsm {
        ThumbAsm::default()
    }

    /// Names the region starting at the current instruction index. Marks
    /// are pure metadata — they emit nothing — and feed the trace
    /// layer's symbolized hotspot/region reports. Positions are in
    /// *instruction index* units, matching the PC of the pre-decoded
    /// [`crate::CortexM4::run`] path.
    pub fn mark(&mut self, name: &str) {
        self.symbols
            .push((self.items.len() as u32, name.to_string()));
    }

    /// The `(instruction_index, name)` marks recorded so far, in
    /// emission order.
    #[must_use]
    pub fn symbols(&self) -> &[(u32, String)] {
        &self.symbols
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if no instructions were emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Creates a new, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label bound twice at instruction {}",
            self.items.len()
        );
        self.labels[label.0] = Some(self.items.len());
    }

    /// Creates a label bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Appends a raw instruction.
    pub fn emit(&mut self, instr: ThumbInstr) {
        self.items.push(Item::Plain(instr));
    }

    /// Loads a 32-bit constant (`movw`, plus `movt` when needed).
    pub fn li(&mut self, rd: R, value: i32) {
        let v = value as u32;
        self.emit(ThumbInstr::Movw {
            rd,
            imm: (v & 0xffff) as u16,
        });
        if v >> 16 != 0 {
            self.emit(ThumbInstr::Movt {
                rd,
                imm: (v >> 16) as u16,
            });
        }
    }

    /// `mov rd, rm`
    pub fn mv(&mut self, rd: R, rm: R) {
        self.emit(ThumbInstr::MovReg { rd, rm });
    }

    /// Register-register data processing.
    pub fn dp(&mut self, op: DpOp, rd: R, rn: R, rm: R) {
        self.emit(ThumbInstr::Dp { op, rd, rn, rm });
    }

    /// `add rd, rn, rm`
    pub fn add(&mut self, rd: R, rn: R, rm: R) {
        self.dp(DpOp::Add, rd, rn, rm);
    }

    /// `sub rd, rn, rm`
    pub fn sub(&mut self, rd: R, rn: R, rm: R) {
        self.dp(DpOp::Sub, rd, rn, rm);
    }

    /// `mul rd, rn, rm`
    pub fn mul(&mut self, rd: R, rn: R, rm: R) {
        self.dp(DpOp::Mul, rd, rn, rm);
    }

    /// `add rd, rn, #imm`
    pub fn add_imm(&mut self, rd: R, rn: R, imm: i32) {
        self.emit(ThumbInstr::AddImm { rd, rn, imm });
    }

    /// `subs rd, rn, #imm` (sets flags)
    pub fn subs(&mut self, rd: R, rn: R, imm: i32) {
        self.emit(ThumbInstr::SubsImm { rd, rn, imm });
    }

    /// `asr rd, rm, #shamt`
    pub fn asr_imm(&mut self, rd: R, rm: R, shamt: u8) {
        self.emit(ThumbInstr::AsrImm { rd, rm, shamt });
    }

    /// `lsl rd, rm, #shamt`
    pub fn lsl_imm(&mut self, rd: R, rm: R, shamt: u8) {
        self.emit(ThumbInstr::LslImm { rd, rm, shamt });
    }

    /// `mla rd, rn, rm, ra`
    pub fn mla(&mut self, rd: R, rn: R, rm: R, ra: R) {
        self.emit(ThumbInstr::Mla { rd, rn, rm, ra });
    }

    /// Load with immediate offset.
    pub fn ldr(&mut self, width: LsWidth, rt: R, rn: R, offset: i32) {
        self.emit(ThumbInstr::Ldr {
            width,
            rt,
            rn,
            offset,
            mode: AddrMode::Offset,
        });
    }

    /// Post-indexed load: access at `rn`, then `rn += offset`.
    pub fn ldr_post(&mut self, width: LsWidth, rt: R, rn: R, offset: i32) {
        self.emit(ThumbInstr::Ldr {
            width,
            rt,
            rn,
            offset,
            mode: AddrMode::PostInc,
        });
    }

    /// Store with immediate offset.
    pub fn str(&mut self, width: LsWidth, rt: R, rn: R, offset: i32) {
        self.emit(ThumbInstr::Str {
            width,
            rt,
            rn,
            offset,
            mode: AddrMode::Offset,
        });
    }

    /// Post-indexed store.
    pub fn str_post(&mut self, width: LsWidth, rt: R, rn: R, offset: i32) {
        self.emit(ThumbInstr::Str {
            width,
            rt,
            rn,
            offset,
            mode: AddrMode::PostInc,
        });
    }

    /// `cmp rn, rm`
    pub fn cmp(&mut self, rn: R, rm: R) {
        self.emit(ThumbInstr::Cmp { rn, rm });
    }

    /// `cmp rn, #imm`
    pub fn cmp_imm(&mut self, rn: R, imm: i32) {
        self.emit(ThumbInstr::CmpImm { rn, imm });
    }

    /// Conditional branch to a label.
    pub fn b_to(&mut self, cond: Cond, label: Label) {
        self.items.push(Item::BranchTo { cond, label });
    }

    /// Unconditional branch to a label.
    pub fn b(&mut self, label: Label) {
        self.b_to(Cond::Al, label);
    }

    /// `vldr.f32 sd, [rn, #offset]`
    pub fn vldr(&mut self, sd: S, rn: R, offset: i32) {
        self.emit(ThumbInstr::Vldr { sd, rn, offset });
    }

    /// Post-indexed float load (`vldmia rn!, {sd}`).
    pub fn vldr_post(&mut self, sd: S, rn: R, offset: i32) {
        self.emit(ThumbInstr::VldrPost { sd, rn, offset });
    }

    /// `vstr.f32 sd, [rn, #offset]`
    pub fn vstr(&mut self, sd: S, rn: R, offset: i32) {
        self.emit(ThumbInstr::Vstr { sd, rn, offset });
    }

    /// `bkpt` — halts the core.
    pub fn bkpt(&mut self) {
        self.emit(ThumbInstr::Bkpt);
    }

    /// Resolves labels and returns the program.
    ///
    /// # Errors
    ///
    /// Returns [`UnboundLabelError`] if a referenced label was never bound.
    pub fn finish(&self) -> Result<Vec<ThumbInstr>, UnboundLabelError> {
        self.items
            .iter()
            .map(|item| match *item {
                Item::Plain(i) => Ok(i),
                Item::BranchTo { cond, label } => {
                    let target = self.labels[label.0].ok_or(UnboundLabelError(label))?;
                    Ok(ThumbInstr::B { cond, target })
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_label_resolution() {
        let mut asm = ThumbAsm::new();
        let skip = asm.new_label();
        asm.b_to(Cond::Al, skip);
        asm.li(R::R0, 1);
        asm.bind(skip);
        asm.bkpt();
        let program = asm.finish().unwrap();
        assert_eq!(
            program[0],
            ThumbInstr::B {
                cond: Cond::Al,
                target: 2
            }
        );
    }

    #[test]
    fn unbound_label_rejected() {
        let mut asm = ThumbAsm::new();
        let l = asm.new_label();
        asm.b_to(Cond::Al, l);
        assert!(asm.finish().is_err());
    }

    #[test]
    fn li_emits_one_or_two() {
        let mut asm = ThumbAsm::new();
        asm.li(R::R0, 100);
        assert_eq!(asm.len(), 1);
        asm.li(R::R1, 0x10000);
        assert_eq!(asm.len(), 3);
    }
}
