//! Reliability accounting shared by the device layer and the fleet
//! aggregator: per-kind fault counters, BLE sync outcomes, and the
//! downtime / recovery bookkeeping behind the uptime metric.

use crate::plan::FaultKind;

/// Per-fault-kind episode counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    counts: [u64; FaultKind::COUNT],
}

impl FaultCounters {
    /// Records one episode of `kind`.
    pub fn add(&mut self, kind: FaultKind) {
        self.counts[kind.index()] += 1;
    }

    /// Episodes of `kind` recorded so far.
    #[must_use]
    pub fn get(&self, kind: FaultKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Overwrites the episode count of `kind` — the deserialization
    /// path (e.g. the fleet record codec rebuilding counters from a
    /// byte stream). Simulation code records episodes with
    /// [`FaultCounters::add`].
    pub fn set(&mut self, kind: FaultKind, count: u64) {
        self.counts[kind.index()] = count;
    }

    /// Total episodes across every kind.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(kind, count)` for every kind with at least one episode.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (FaultKind, u64)> + '_ {
        FaultKind::ALL
            .into_iter()
            .map(|k| (k, self.get(k)))
            .filter(|&(_, n)| n > 0)
    }

    /// Folds the other counter set into this one (fleet aggregation).
    pub fn merge(&mut self, other: &FaultCounters) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

/// How one BLE sync episode resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOutcome {
    /// Delivered on the first burst.
    Ok,
    /// Delivered after one or more retries.
    Retried,
    /// Dropped after exhausting the retry budget.
    Dropped,
}

/// Raw reliability accumulators for one device run. Everything here is an
/// exact integer (or microsecond) count, so fleet digests over these
/// fields are bit-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReliabilityCounters {
    /// Time spent browned out (acquisition-off), microseconds.
    pub downtime_us: u64,
    /// Brownout episodes entered.
    pub brownouts: u64,
    /// Brownout episodes recovered from.
    pub recoveries: u64,
    /// Summed brownout-entry → resume time over recovered episodes, µs.
    pub recovery_us: u64,
    /// Acquisition windows discarded by the signal-quality gate.
    pub degraded_windows: u64,
    /// Acquisitions the policy skipped while browned out.
    pub skipped_acquisitions: u64,
    /// Resolved BLE sync episodes (= ok + dropped).
    pub sync_episodes: u64,
    /// Episodes delivered (first try or after retries).
    pub sync_ok: u64,
    /// Delivered episodes that needed at least one retry.
    pub sync_retried: u64,
    /// Episodes dropped after the retry budget.
    pub sync_dropped: u64,
}

impl ReliabilityCounters {
    /// Records one resolved sync episode.
    pub fn record_sync(&mut self, outcome: SyncOutcome) {
        self.sync_episodes += 1;
        match outcome {
            SyncOutcome::Ok => self.sync_ok += 1,
            SyncOutcome::Retried => {
                self.sync_ok += 1;
                self.sync_retried += 1;
            }
            SyncOutcome::Dropped => self.sync_dropped += 1,
        }
    }

    /// Fraction of `duration_us` the device was operational.
    #[must_use]
    pub fn uptime_fraction(&self, duration_us: u64) -> f64 {
        if duration_us == 0 {
            return 1.0;
        }
        1.0 - self.downtime_us.min(duration_us) as f64 / duration_us as f64
    }

    /// Mean brownout-to-resume time over recovered episodes, seconds
    /// (zero when nothing ever recovered).
    #[must_use]
    pub fn mean_recovery_s(&self) -> f64 {
        if self.recoveries == 0 {
            0.0
        } else {
            self.recovery_us as f64 / self.recoveries as f64 / 1e6
        }
    }

    /// Folds the other counter set into this one (fleet aggregation).
    pub fn merge(&mut self, other: &ReliabilityCounters) {
        self.downtime_us += other.downtime_us;
        self.brownouts += other.brownouts;
        self.recoveries += other.recoveries;
        self.recovery_us += other.recovery_us;
        self.degraded_windows += other.degraded_windows;
        self.skipped_acquisitions += other.skipped_acquisitions;
        self.sync_episodes += other.sync_episodes;
        self.sync_ok += other.sync_ok;
        self.sync_retried += other.sync_retried;
        self.sync_dropped += other.sync_dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count_and_merge() {
        let mut a = FaultCounters::default();
        a.add(FaultKind::EcgLeadOff);
        a.add(FaultKind::EcgLeadOff);
        a.add(FaultKind::Brownout);
        assert_eq!(a.get(FaultKind::EcgLeadOff), 2);
        assert_eq!(a.total(), 3);
        let mut b = FaultCounters::default();
        b.add(FaultKind::Brownout);
        a.merge(&b);
        assert_eq!(a.get(FaultKind::Brownout), 2);
        assert_eq!(a.iter_nonzero().count(), 2);
    }

    #[test]
    fn sync_outcomes_partition_episodes() {
        let mut r = ReliabilityCounters::default();
        r.record_sync(SyncOutcome::Ok);
        r.record_sync(SyncOutcome::Retried);
        r.record_sync(SyncOutcome::Dropped);
        assert_eq!(r.sync_episodes, 3);
        assert_eq!(r.sync_ok + r.sync_dropped, r.sync_episodes);
        assert_eq!(r.sync_retried, 1);
    }

    #[test]
    fn uptime_and_recovery_arithmetic() {
        let r = ReliabilityCounters {
            downtime_us: 25_000_000,
            recoveries: 2,
            recovery_us: 20_000_000,
            ..ReliabilityCounters::default()
        };
        assert!((r.uptime_fraction(100_000_000) - 0.75).abs() < 1e-12);
        assert!((r.mean_recovery_s() - 10.0).abs() < 1e-12);
        assert_eq!(ReliabilityCounters::default().uptime_fraction(0), 1.0);
        assert_eq!(ReliabilityCounters::default().mean_recovery_s(), 0.0);
    }
}
