//! Fault plans: what goes wrong, when, and how badly.
//!
//! A [`FaultPlan`] is generated *before* a run as a pure function of a
//! seed and a [`FaultProfile`] — the simulation itself never draws fault
//! arrival times, so a device run stays a deterministic function of its
//! configuration and the fleet digest survives fault injection. Windowed
//! faults (electrode lead-off, motion artifacts, solar occlusion, TEG
//! ΔT collapse) are materialised as sorted [`FaultWindow`]s; per-attempt
//! faults (BLE sync loss) and continuous ones (fuel-gauge noise) are
//! parameters consumed by seeded streams inside the device components.

use crate::rng::{mix, SplitMix64};

/// Microseconds per second (matches the event engine's tick rate).
const US_PER_S: f64 = 1e6;

fn secs_to_us(seconds: f64) -> u64 {
    (seconds * US_PER_S).round() as u64
}

/// Every fault class the subsystem models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// ECG electrode lead-off: the acquisition window is unusable.
    EcgLeadOff,
    /// Motion artifact corrupting the ECG/GSR window.
    MotionArtifact,
    /// GSR electrode detach: the acquisition window is unusable.
    GsrDetach,
    /// Solar panel occluded (sleeve, shade): intake scaled down.
    SolarOcclusion,
    /// TEG ΔT collapse (bracelet off wrist, ambient = skin).
    TegCollapse,
    /// A BLE sync attempt failed and must be retried or dropped.
    BleLoss,
    /// Fuel-gauge read noise is perturbing the observed state of charge.
    GaugeNoise,
    /// Battery crossed the LDO cutoff: brownout episode.
    Brownout,
}

impl FaultKind {
    /// Number of fault kinds (array-size for per-kind counters).
    pub const COUNT: usize = 8;

    /// All kinds, in counter order.
    pub const ALL: [FaultKind; FaultKind::COUNT] = [
        FaultKind::EcgLeadOff,
        FaultKind::MotionArtifact,
        FaultKind::GsrDetach,
        FaultKind::SolarOcclusion,
        FaultKind::TegCollapse,
        FaultKind::BleLoss,
        FaultKind::GaugeNoise,
        FaultKind::Brownout,
    ];

    /// Stable index into per-kind counter arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FaultKind::EcgLeadOff => 0,
            FaultKind::MotionArtifact => 1,
            FaultKind::GsrDetach => 2,
            FaultKind::SolarOcclusion => 3,
            FaultKind::TegCollapse => 4,
            FaultKind::BleLoss => 5,
            FaultKind::GaugeNoise => 6,
            FaultKind::Brownout => 7,
        }
    }

    /// Short label (also the trace instant name for windowed faults).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::EcgLeadOff => "ecg-lead-off",
            FaultKind::MotionArtifact => "motion-artifact",
            FaultKind::GsrDetach => "gsr-detach",
            FaultKind::SolarOcclusion => "solar-occlusion",
            FaultKind::TegCollapse => "teg-collapse",
            FaultKind::BleLoss => "ble-loss",
            FaultKind::GaugeNoise => "gauge-noise",
            FaultKind::Brownout => "brownout",
        }
    }

    /// Whether this kind corrupts an open acquisition window (the
    /// signal-quality gate skips classification on such windows).
    #[must_use]
    pub fn corrupts_signal(self) -> bool {
        matches!(
            self,
            FaultKind::EcgLeadOff | FaultKind::MotionArtifact | FaultKind::GsrDetach
        )
    }
}

/// One scheduled fault episode: `kind` is active over `[start_us, end_us)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// What fails.
    pub kind: FaultKind,
    /// Window start, engine microseconds.
    pub start_us: u64,
    /// Window end, engine microseconds.
    pub end_us: u64,
    /// Kind-specific severity: remaining intake fraction for
    /// [`FaultKind::SolarOcclusion`] / [`FaultKind::TegCollapse`]
    /// (0 = fully lost), unused (0) for signal faults.
    pub severity: f64,
}

impl FaultWindow {
    /// A severity-0 window of `kind` spanning `[start_s, end_s)` in
    /// seconds — the common shape when scripting signal-quality or
    /// link-outage windows by hand (tests, scenarios).
    #[must_use]
    pub fn spanning(kind: FaultKind, start_s: f64, end_s: f64) -> FaultWindow {
        FaultWindow {
            kind,
            start_us: (start_s * 1e6) as u64,
            end_us: (end_s * 1e6) as u64,
            severity: 0.0,
        }
    }
}

/// The LDO-cutoff / cold-start model (BQ25570-style): below `cutoff_soc`
/// the device drops to acquisition-off; once the battery recovers past
/// `restart_soc` the charger cold-starts for `cold_start_s` before the
/// device resumes. While browned out the load falls to
/// `leakage_fraction` of the sleep floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutModel {
    /// State of charge at which the LDO cuts out.
    pub cutoff_soc: f64,
    /// State of charge required before a restart is attempted.
    pub restart_soc: f64,
    /// Cold-start delay between reaching `restart_soc` and resuming, s.
    pub cold_start_s: f64,
    /// Fraction of the sleep floor still drawn while browned out.
    pub leakage_fraction: f64,
}

impl Default for BrownoutModel {
    fn default() -> BrownoutModel {
        BrownoutModel {
            cutoff_soc: 0.02,
            restart_soc: 0.05,
            cold_start_s: 30.0,
            leakage_fraction: 0.1,
        }
    }
}

/// A complete, pre-materialised fault plan for one device run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed the plan (and the in-run BLE / gauge streams) derive from.
    pub seed: u64,
    /// Scheduled fault windows, sorted by `start_us`.
    pub windows: Vec<FaultWindow>,
    /// Per-attempt BLE sync loss probability.
    pub ble_loss_prob: f64,
    /// Retries before a sync episode is dropped.
    pub ble_max_retries: u32,
    /// Initial retry backoff, seconds (doubles per retry).
    pub ble_backoff_s: f64,
    /// Amplitude of the uniform fuel-gauge SoC read error (0 = exact).
    pub gauge_noise_soc: f64,
    /// Gauge resample cadence, seconds.
    pub gauge_interval_s: f64,
    /// The brownout / cold-start state machine parameters.
    pub brownout: BrownoutModel,
}

impl FaultPlan {
    /// The fault-free plan: no windows, lossless BLE, exact gauge. The
    /// brownout model stays armed — running out of energy is a fault
    /// regardless of profile.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            windows: Vec::new(),
            ble_loss_prob: 0.0,
            ble_max_retries: 2,
            ble_backoff_s: 0.5,
            gauge_noise_soc: 0.0,
            gauge_interval_s: 10.0,
            brownout: BrownoutModel::default(),
        }
    }

    /// Whether the plan injects anything beyond the always-armed
    /// brownout machine.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.windows.is_empty() && self.ble_loss_prob == 0.0 && self.gauge_noise_soc == 0.0
    }
}

/// Arrival-process parameters for one windowed fault kind.
struct WindowSpec {
    kind: FaultKind,
    mean_gap_s: f64,
    min_len_s: f64,
    max_len_s: f64,
    min_severity: f64,
    max_severity: f64,
}

impl WindowSpec {
    /// Materialises this spec's windows over `[0, duration_s)` from its
    /// own derived stream (so adding a kind never shifts another kind's
    /// arrivals).
    fn generate(&self, seed: u64, duration_s: f64, out: &mut Vec<FaultWindow>) {
        let mut rng = SplitMix64::new(mix(seed, self.kind.index() as u64 + 1));
        let mut t_s = rng.exp_f64(self.mean_gap_s);
        while t_s < duration_s {
            let len_s = rng.range_f64(self.min_len_s, self.max_len_s);
            let end_s = (t_s + len_s).min(duration_s);
            out.push(FaultWindow {
                kind: self.kind,
                start_us: secs_to_us(t_s),
                end_us: secs_to_us(end_s),
                severity: rng.range_f64(self.min_severity, self.max_severity),
            });
            // Next arrival: after this window closes, plus a fresh gap —
            // windows of one kind never overlap by construction.
            t_s = end_s + rng.exp_f64(self.mean_gap_s);
        }
    }
}

/// Named fault intensity levels for sweeps and the `fleet --faults` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultProfile {
    /// No injected faults (brownout machine still armed).
    #[default]
    Clean,
    /// Everyday adversity: occasional lead-off and artifacts, shaded
    /// light, 10 % BLE loss, mild gauge noise.
    Moderate,
    /// Hostile day: frequent electrode and motion faults, long occlusion
    /// and ΔT-collapse episodes, 35 % BLE loss, noisy gauge.
    Harsh,
}

impl FaultProfile {
    /// All profiles, in increasing severity.
    pub const ALL: [FaultProfile; 3] = [
        FaultProfile::Clean,
        FaultProfile::Moderate,
        FaultProfile::Harsh,
    ];

    /// The profile's CLI / table label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultProfile::Clean => "clean",
            FaultProfile::Moderate => "moderate",
            FaultProfile::Harsh => "harsh",
        }
    }

    /// Parses a CLI label (`clean` / `moderate` / `harsh`).
    #[must_use]
    pub fn parse(s: &str) -> Option<FaultProfile> {
        match s {
            "clean" => Some(FaultProfile::Clean),
            "moderate" => Some(FaultProfile::Moderate),
            "harsh" => Some(FaultProfile::Harsh),
            _ => None,
        }
    }

    fn window_specs(self) -> Vec<WindowSpec> {
        match self {
            FaultProfile::Clean => Vec::new(),
            FaultProfile::Moderate => vec![
                WindowSpec {
                    kind: FaultKind::EcgLeadOff,
                    mean_gap_s: 2.0 * 3600.0,
                    min_len_s: 30.0,
                    max_len_s: 120.0,
                    min_severity: 0.0,
                    max_severity: 0.0,
                },
                WindowSpec {
                    kind: FaultKind::MotionArtifact,
                    mean_gap_s: 20.0 * 60.0,
                    min_len_s: 5.0,
                    max_len_s: 30.0,
                    min_severity: 0.0,
                    max_severity: 0.0,
                },
                WindowSpec {
                    kind: FaultKind::GsrDetach,
                    mean_gap_s: 4.0 * 3600.0,
                    min_len_s: 60.0,
                    max_len_s: 300.0,
                    min_severity: 0.0,
                    max_severity: 0.0,
                },
                WindowSpec {
                    kind: FaultKind::SolarOcclusion,
                    mean_gap_s: 3600.0,
                    min_len_s: 5.0 * 60.0,
                    max_len_s: 20.0 * 60.0,
                    min_severity: 0.0,
                    max_severity: 0.3,
                },
                WindowSpec {
                    kind: FaultKind::TegCollapse,
                    mean_gap_s: 3.0 * 3600.0,
                    min_len_s: 10.0 * 60.0,
                    max_len_s: 30.0 * 60.0,
                    min_severity: 0.0,
                    max_severity: 0.2,
                },
            ],
            FaultProfile::Harsh => vec![
                WindowSpec {
                    kind: FaultKind::EcgLeadOff,
                    mean_gap_s: 30.0 * 60.0,
                    min_len_s: 60.0,
                    max_len_s: 300.0,
                    min_severity: 0.0,
                    max_severity: 0.0,
                },
                WindowSpec {
                    kind: FaultKind::MotionArtifact,
                    mean_gap_s: 5.0 * 60.0,
                    min_len_s: 10.0,
                    max_len_s: 60.0,
                    min_severity: 0.0,
                    max_severity: 0.0,
                },
                WindowSpec {
                    kind: FaultKind::GsrDetach,
                    mean_gap_s: 3600.0,
                    min_len_s: 120.0,
                    max_len_s: 600.0,
                    min_severity: 0.0,
                    max_severity: 0.0,
                },
                WindowSpec {
                    kind: FaultKind::SolarOcclusion,
                    mean_gap_s: 20.0 * 60.0,
                    min_len_s: 10.0 * 60.0,
                    max_len_s: 40.0 * 60.0,
                    min_severity: 0.0,
                    max_severity: 0.1,
                },
                WindowSpec {
                    kind: FaultKind::TegCollapse,
                    mean_gap_s: 3600.0,
                    min_len_s: 20.0 * 60.0,
                    max_len_s: 3600.0,
                    min_severity: 0.0,
                    max_severity: 0.1,
                },
            ],
        }
    }

    /// Materialises this profile over a run of `duration_s` seconds,
    /// seeded with `seed`. Pure: same `(profile, seed, duration)` →
    /// identical plan, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics when `duration_s` is negative or not finite.
    #[must_use]
    pub fn plan(self, seed: u64, duration_s: f64) -> FaultPlan {
        assert!(
            duration_s.is_finite() && duration_s >= 0.0,
            "fault plan duration must be a non-negative finite number of seconds"
        );
        let mut windows = Vec::new();
        for spec in self.window_specs() {
            spec.generate(seed, duration_s, &mut windows);
        }
        // Stable order: by start time, ties by kind index (each kind's
        // windows are already internally sorted and non-overlapping).
        windows.sort_by_key(|w| (w.start_us, w.kind.index()));
        let (ble_loss_prob, gauge_noise_soc) = match self {
            FaultProfile::Clean => (0.0, 0.0),
            FaultProfile::Moderate => (0.10, 0.02),
            FaultProfile::Harsh => (0.35, 0.05),
        };
        FaultPlan {
            seed,
            windows,
            ble_loss_prob,
            ble_max_retries: 2,
            ble_backoff_s: 0.5,
            gauge_noise_soc,
            gauge_interval_s: 10.0,
            brownout: BrownoutModel::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_seed_and_duration() {
        let a = FaultProfile::Harsh.plan(2020, 86_400.0);
        let b = FaultProfile::Harsh.plan(2020, 86_400.0);
        assert_eq!(a, b);
        let c = FaultProfile::Harsh.plan(2021, 86_400.0);
        assert_ne!(a.windows, c.windows);
    }

    #[test]
    fn clean_plan_is_trivial_and_harsh_is_not() {
        assert!(FaultProfile::Clean.plan(1, 86_400.0).is_trivial());
        let harsh = FaultProfile::Harsh.plan(1, 86_400.0);
        assert!(!harsh.is_trivial());
        assert!(harsh.windows.len() > 50, "{} windows", harsh.windows.len());
    }

    #[test]
    fn windows_are_sorted_clipped_and_non_overlapping_per_kind() {
        let plan = FaultProfile::Moderate.plan(7, 86_400.0);
        let end_us = 86_400_000_000;
        for w in plan.windows.windows(2) {
            assert!(w[0].start_us <= w[1].start_us);
        }
        for kind in FaultKind::ALL {
            let mut last_end = 0;
            for w in plan.windows.iter().filter(|w| w.kind == kind) {
                assert!(w.start_us >= last_end, "{kind:?} windows overlap");
                assert!(w.end_us > w.start_us && w.end_us <= end_us);
                assert!((0.0..1.0).contains(&w.severity) || w.severity == 0.0);
                last_end = w.end_us;
            }
        }
    }

    #[test]
    fn harsher_profiles_inject_more() {
        let m = FaultProfile::Moderate.plan(3, 86_400.0);
        let h = FaultProfile::Harsh.plan(3, 86_400.0);
        assert!(h.windows.len() > m.windows.len());
        assert!(h.ble_loss_prob > m.ble_loss_prob);
        assert!(h.gauge_noise_soc > m.gauge_noise_soc);
    }

    #[test]
    fn profile_labels_round_trip() {
        for p in FaultProfile::ALL {
            assert_eq!(FaultProfile::parse(p.label()), Some(p));
        }
        assert_eq!(FaultProfile::parse("bogus"), None);
    }

    #[test]
    fn kind_indices_are_a_bijection() {
        let mut seen = [false; FaultKind::COUNT];
        for kind in FaultKind::ALL {
            assert!(!seen[kind.index()]);
            seen[kind.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
