//! # iw-fault — deterministic fault injection & reliability accounting
//!
//! InfiniWolf's operating regime *is* adversity: lead-off ECG electrodes,
//! occluded solar panels, collapsed TEG gradients, lost BLE syncs and
//! battery brownouts. This crate gives the `iw-sim` engine a fault model
//! with two hard properties:
//!
//! 1. **Determinism.** A [`FaultPlan`] is materialised *before* the run
//!    as a pure function of `(profile, seed, duration)` — SplitMix64
//!    streams ([`SplitMix64`], [`mix`]) per fault kind, so the fleet
//!    digest stays bit-identical across worker thread counts.
//! 2. **Exact accounting.** [`FaultCounters`] and
//!    [`ReliabilityCounters`] are integer/microsecond-exact, so uptime,
//!    degraded-window and sync-outcome statistics can be folded into the
//!    fleet's FNV-1a digest without float-ordering hazards.
//!
//! The device-layer *responses* (signal-quality gating, BLE retry with
//! exponential backoff, the brownout-safe state machine) live in
//! `iw-sim`; this crate defines what fails, when, and what gets counted.

#![warn(missing_docs)]

mod plan;
mod rng;
mod stats;

pub use plan::{BrownoutModel, FaultKind, FaultPlan, FaultProfile, FaultWindow};
pub use rng::{mix, SplitMix64};
pub use stats::{FaultCounters, ReliabilityCounters, SyncOutcome};
