//! SplitMix64: the crate's only randomness source.
//!
//! Fault plans must be a pure function of `(seed, device index)` so the
//! fleet digest stays invariant under thread count. SplitMix64 gives a
//! high-quality 64-bit stream from a single word of state, and its
//! finalizer doubles as the stream-derivation mix — the same one the
//! fleet runner uses to decorrelate device indices.

/// The SplitMix64 finalizer: decorrelates `index` under `seed` before it
/// seeds a derived stream.
#[must_use]
pub fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A SplitMix64 generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` (53-bit mantissa resolution).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// An exponentially distributed gap with the given mean (inverse-CDF
    /// sampling), for Poisson-process fault arrival times.
    pub fn exp_f64(&mut self, mean: f64) -> f64 {
        // 1 − u is in (0, 1], so ln is finite.
        -mean * (1.0 - self.next_f64()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            let g = rng.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&g));
        }
    }

    #[test]
    fn exponential_gaps_have_roughly_the_requested_mean() {
        let mut rng = SplitMix64::new(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exp_f64(10.0)).sum();
        let mean = sum / f64::from(n);
        assert!((9.0..11.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn mix_decorrelates_consecutive_indices() {
        let a = mix(2020, 0);
        let b = mix(2020, 1);
        assert_ne!(a, b);
        assert_ne!(a & 0xffff, b & 0xffff);
    }
}
