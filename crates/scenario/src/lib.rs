//! Fleet-wide scenario compiler: the fleet becomes a network.
//!
//! A [`Scenario`] describes *cross-device* structure — where wearers
//! move, who meets whom, which environments a weather front derates,
//! which regions lose their BLE gateway, and how an infection seeds and
//! spreads along the contact graph. [`Scenario::compile`] lowers all of
//! it, deterministically, into **per-device artifacts**:
//!
//! * extra [`FaultWindow`]s (solar derates for weather fronts, BLE
//!   gateway-outage windows) that merge into the device's existing
//!   `iw-fault` plan, and
//! * a [`ContactPlan`] of `(window, peer, RSSI)` entries the device's
//!   BLE scanner plays back.
//!
//! Because every artifact is a pure function of `(scenario, device
//! index)`, devices stay **independently simulable**: a fleet shard can
//! run its devices in any order, on any host, and fold to the same
//! digest. The only genuinely cross-device computation — infection
//! spreading — is deferred to an **epoch fold** ([`run_epidemic`]) over
//! the observed [`ContactEdge`]s every device reports back: epochs are
//! iterated in lockstep, edges within an epoch are merged in
//! device-index order, and each transmission is a pure hash draw, so
//! the fold is itself a pure function of the merged edge set and runs
//! identically on the in-process runner and the multi-process
//! coordinator.
//!
//! Compilation streams (mobility, weather, gateway, seeding,
//! transmission) derive from distinct stream constants, so adding one
//! scenario feature never shifts another's draws.

#![warn(missing_docs)]

use iw_fault::{mix, FaultKind, FaultWindow, SplitMix64};
use iw_harvest::EnvProfile;

/// Microseconds per second (matches the event engine's tick rate).
const US_PER_S: f64 = 1e6;

fn secs_to_us(seconds: f64) -> u64 {
    (seconds * US_PER_S).round() as u64
}

/// Stream constant: per-device mobility random walks.
const MOBILITY_STREAM: u64 = 0x4d4f_4249_4c31; // "MOBIL1"
/// Stream constant: per-environment weather fronts.
const WEATHER_STREAM: u64 = 0x5745_4154_4831; // "WEATH1"
/// Stream constant: per-environment gateway outages.
const GATEWAY_STREAM: u64 = 0x4754_5741_5931; // "GTWAY1"
/// Stream constant: epidemic seeding rank.
const EPIDEMIC_STREAM: u64 = 0x4550_4944_4531; // "EPIDE1"
/// Stream constant: per-(epoch, edge) transmission draws.
const TRANSMIT_STREAM: u64 = 0x5452_414e_5331; // "TRANS1"
/// Stream constant: per-(epoch, cell) contact-window jitter.
const CONTACT_STREAM: u64 = 0x434f_4e54_4131; // "CONTA1"

/// One contact opportunity in a device's [`ContactPlan`]: peer
/// `peer` is co-located over `[start_us, end_us)` at the given RSSI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContactEntry {
    /// Window start, engine microseconds.
    pub start_us: u64,
    /// Window end, engine microseconds.
    pub end_us: u64,
    /// The co-located peer's device index.
    pub peer: u32,
    /// Received signal strength at the scanner, dBm (distance-derived).
    pub rssi_dbm: i8,
}

/// The per-device contact artifact: every co-location window the
/// device's BLE scanner may observe, sorted by start time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ContactPlan {
    /// Contact windows, sorted by `(start_us, peer)`.
    pub entries: Vec<ContactEntry>,
    /// Simulated-time length of one epoch, microseconds (0 when the
    /// plan is empty / no scenario is attached).
    pub epoch_us: u64,
}

impl ContactPlan {
    /// Whether the plan carries any contact windows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One observed contact-graph edge, reported back by a device: during
/// epoch `epoch` the device successfully scanned `peer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ContactEdge {
    /// Epoch index the scan completed in.
    pub epoch: u32,
    /// The scanning (observing) device.
    pub device: u32,
    /// The observed peer.
    pub peer: u32,
}

/// The epidemic script: who starts infected and how readily infection
/// crosses an observed contact edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpidemicScript {
    /// Number of initially infected devices (chosen by seeded hash
    /// rank, so the set is stable under sharding).
    pub initial_infected: usize,
    /// Probability that one observed contact with an infected peer
    /// transmits, per edge per epoch.
    pub transmissibility: f64,
}

/// A fleet-wide scenario description. Compile with
/// [`Scenario::compile`]; attach the result to a fleet configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario seed (independent of the fleet seed mixing for fault
    /// plans; the fleet runner passes its own seed through here).
    pub seed: u64,
    /// Number of devices in the fleet.
    pub devices: usize,
    /// Simulated duration, seconds (must match the environment day).
    pub duration_s: f64,
    /// Epoch (barrier) length, seconds — mobility steps, contact
    /// windows and the infection fold all advance per epoch.
    pub epoch_s: f64,
    /// Side length of the square mobility world, meters.
    pub world_m: f64,
    /// Per-epoch random-walk step scale, meters.
    pub step_m: f64,
    /// Two devices within this range are in contact, meters.
    pub contact_radius_m: f64,
    /// Cap on contact windows per device per epoch (keeps plans — and
    /// therefore aggregate memory — bounded).
    pub max_contacts_per_epoch: usize,
    /// Weather fronts per environment over the whole run (each front
    /// derates every solar panel in that environment).
    pub weather_fronts_per_env: usize,
    /// Remaining solar intake fraction under a front (0 = blackout).
    pub weather_severity: f64,
    /// Gateway outages per environment region over the whole run.
    pub gateway_outages_per_env: usize,
    /// The epidemic script.
    pub epidemic: EpidemicScript,
    /// Environments the scenario supplies. When non-empty these replace
    /// the fleet configuration's environment list (the scenario is the
    /// source of truth for regional structure); weather fronts and
    /// gateway outages group devices by `index % environments.len()`,
    /// mirroring the fleet runner's assignment.
    pub environments: Vec<(String, EnvProfile)>,
}

/// The paper's three-environment list (indoor 6 h day, 40 klx sunny
/// day, fully dark day) — the single source both the default fleet
/// configuration and the scenario presets draw from.
#[must_use]
pub fn paper_environments() -> Vec<(String, EnvProfile)> {
    vec![
        ("indoor-6h".to_string(), EnvProfile::paper_indoor_day()),
        ("sunny-40klx".to_string(), EnvProfile::sunny_day(40.0)),
        ("dark".to_string(), EnvProfile::dark_day(86_400.0)),
    ]
}

impl Scenario {
    /// The epidemic preset: one simulated day in the paper's three
    /// environments, hourly epochs, a dense-enough mobility world that
    /// the contact graph percolates, two weather fronts and one gateway
    /// outage per environment, and a 4 %-seeded infection.
    #[must_use]
    pub fn epidemic(devices: usize, seed: u64) -> Scenario {
        Scenario {
            seed,
            devices,
            duration_s: 86_400.0,
            epoch_s: 3_600.0,
            world_m: 120.0,
            step_m: 25.0,
            contact_radius_m: 12.0,
            max_contacts_per_epoch: 6,
            weather_fronts_per_env: 2,
            weather_severity: 0.15,
            gateway_outages_per_env: 1,
            epidemic: EpidemicScript {
                initial_infected: (devices / 25).max(1),
                transmissibility: 0.35,
            },
            environments: paper_environments(),
        }
    }

    /// Number of whole epochs in the run.
    #[must_use]
    pub fn epochs(&self) -> u32 {
        (self.duration_s / self.epoch_s).floor() as u32
    }

    /// Deterministically lowers the scenario into per-device artifacts.
    /// Pure: the same scenario compiles to the same
    /// [`CompiledScenario`], bit for bit, on every host — workers never
    /// exchange compiled plans, they just compile locally.
    ///
    /// # Panics
    ///
    /// Panics when the scenario has no environments, a non-positive
    /// epoch, or a non-finite duration.
    #[must_use]
    pub fn compile(&self) -> CompiledScenario {
        assert!(
            !self.environments.is_empty(),
            "a scenario must supply at least one environment"
        );
        assert!(
            self.epoch_s > 0.0 && self.epoch_s.is_finite(),
            "epoch length must be positive and finite"
        );
        assert!(
            self.duration_s.is_finite() && self.duration_s >= self.epoch_s,
            "duration must cover at least one epoch"
        );
        let devices = self.devices;
        let epochs = self.epochs();
        let epoch_us = secs_to_us(self.epoch_s);
        let envs = self.environments.len();

        let mut contacts: Vec<Vec<ContactEntry>> = vec![Vec::new(); devices];
        let mut fault_windows: Vec<Vec<FaultWindow>> = vec![Vec::new(); devices];

        self.compile_contacts(epochs, epoch_us, &mut contacts);
        self.compile_weather(envs, &mut fault_windows);
        self.compile_gateway_outages(envs, &mut fault_windows);

        for plan in &mut contacts {
            plan.sort_by_key(|e| (e.start_us, e.peer));
        }
        for windows in &mut fault_windows {
            windows.sort_by_key(|w| (w.start_us, w.kind.index()));
        }

        CompiledScenario {
            seed: self.seed,
            devices,
            epochs,
            epoch_us,
            transmissibility: self.epidemic.transmissibility,
            seeded: self.seed_infected(),
            contacts: contacts
                .into_iter()
                .map(|entries| ContactPlan { entries, epoch_us })
                .collect(),
            fault_windows,
            environments: self.environments.clone(),
        }
    }

    /// Per-device mobility: a seeded random walk inside the world
    /// square, one step per epoch, reflecting off the walls. Each
    /// device's trace derives from its own stream, so a device's path
    /// never depends on fleet size or shard layout.
    fn positions(&self, device: u32, epochs: u32) -> Vec<(f64, f64)> {
        let mut rng = SplitMix64::new(mix(self.seed ^ MOBILITY_STREAM, u64::from(device)));
        let mut x = rng.range_f64(0.0, self.world_m);
        let mut y = rng.range_f64(0.0, self.world_m);
        let mut out = Vec::with_capacity(epochs as usize);
        for _ in 0..epochs {
            out.push((x, y));
            x = reflect(x + rng.range_f64(-self.step_m, self.step_m), self.world_m);
            y = reflect(y + rng.range_f64(-self.step_m, self.step_m), self.world_m);
        }
        out
    }

    /// Co-location detection per epoch via a uniform grid of
    /// `contact_radius`-sized cells: every pair within the radius gets
    /// a contact window inside the epoch, emitted into *both* devices'
    /// plans, capped per device to bound plan (and aggregate) memory.
    fn compile_contacts(&self, epochs: u32, epoch_us: u64, contacts: &mut [Vec<ContactEntry>]) {
        let devices = contacts.len();
        let traces: Vec<Vec<(f64, f64)>> = (0..devices as u32)
            .map(|d| self.positions(d, epochs))
            .collect();
        let cell = self.contact_radius_m.max(1e-9);
        let grid_w = (self.world_m / cell).ceil() as i64 + 1;
        for epoch in 0..epochs {
            // Bucket devices by grid cell, in index order.
            let mut buckets: std::collections::BTreeMap<(i64, i64), Vec<u32>> =
                std::collections::BTreeMap::new();
            for (d, trace) in traces.iter().enumerate() {
                let (x, y) = trace[epoch as usize];
                let key = ((x / cell) as i64, (y / cell) as i64);
                buckets.entry(key).or_default().push(d as u32);
            }
            let mut emitted = vec![0usize; devices];
            let mut rng = SplitMix64::new(mix(self.seed ^ CONTACT_STREAM, u64::from(epoch)));
            // Candidate pairs in deterministic (cell, index) order: each
            // cell against itself and its +x/+y/+xy neighbours so every
            // nearby pair is considered exactly once.
            for (&(cx, cy), devs) in &buckets {
                for (dx, dy) in [(0, 0), (1, 0), (0, 1), (1, 1), (1, -1)] {
                    let other = (cx + dx, cy + dy);
                    if other.0 >= grid_w || other.1 >= grid_w || other.1 < -1 {
                        continue;
                    }
                    let same = (dx, dy) == (0, 0);
                    let Some(peers) = (if same {
                        Some(devs)
                    } else {
                        buckets.get(&other)
                    }) else {
                        continue;
                    };
                    for (i, &a) in devs.iter().enumerate() {
                        let start_j = if same { i + 1 } else { 0 };
                        for &b in &peers[start_j..] {
                            self.try_emit_pair(
                                epoch,
                                epoch_us,
                                a,
                                b,
                                &traces,
                                &mut emitted,
                                &mut rng,
                                contacts,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Emits one contact window for pair `(a, b)` in `epoch` when they
    /// are within range and neither side is at its per-epoch cap.
    #[allow(clippy::too_many_arguments)]
    fn try_emit_pair(
        &self,
        epoch: u32,
        epoch_us: u64,
        a: u32,
        b: u32,
        traces: &[Vec<(f64, f64)>],
        emitted: &mut [usize],
        rng: &mut SplitMix64,
        contacts: &mut [Vec<ContactEntry>],
    ) {
        if emitted[a as usize] >= self.max_contacts_per_epoch
            || emitted[b as usize] >= self.max_contacts_per_epoch
        {
            return;
        }
        let (ax, ay) = traces[a as usize][epoch as usize];
        let (bx, by) = traces[b as usize][epoch as usize];
        let dist = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        if dist > self.contact_radius_m {
            return;
        }
        // Log-distance path loss: −40 dBm at 1 m, −20 dB per decade.
        let rssi_dbm = (-40.0 - 20.0 * dist.max(0.5).log10())
            .round()
            .clamp(-127.0, 0.0) as i8;
        // The window sits inside the epoch: jittered start, a few
        // minutes long, clipped to the epoch boundary.
        let base = u64::from(epoch) * epoch_us;
        let len_us = secs_to_us(rng.range_f64(60.0, 600.0)).min(epoch_us);
        let jitter_us = secs_to_us(rng.next_f64() * (self.epoch_s - 1.0)).min(epoch_us - 1);
        let start_us = base + jitter_us.min(epoch_us - len_us.min(epoch_us));
        let end_us = (start_us + len_us).min(base + epoch_us);
        emitted[a as usize] += 1;
        emitted[b as usize] += 1;
        for (me, peer) in [(a, b), (b, a)] {
            contacts[me as usize].push(ContactEntry {
                start_us,
                end_us,
                peer,
                rssi_dbm,
            });
        }
    }

    /// Weather fronts: per environment, `weather_fronts_per_env`
    /// windows of solar derate applied to **every** device assigned to
    /// that environment (`index % envs`) — the correlated-occlusion
    /// fault the ROADMAP asked for, expressed in existing `iw-fault`
    /// window machinery.
    fn compile_weather(&self, envs: usize, fault_windows: &mut [Vec<FaultWindow>]) {
        for env in 0..envs {
            let mut rng = SplitMix64::new(mix(self.seed ^ WEATHER_STREAM, env as u64));
            for _ in 0..self.weather_fronts_per_env {
                let start_s = rng.range_f64(0.0, self.duration_s * 0.8);
                let len_s = rng.range_f64(0.05, 0.15) * self.duration_s;
                let window = FaultWindow {
                    kind: FaultKind::SolarOcclusion,
                    start_us: secs_to_us(start_s),
                    end_us: secs_to_us((start_s + len_s).min(self.duration_s)),
                    severity: self.weather_severity,
                };
                for (device, windows) in fault_windows.iter_mut().enumerate() {
                    if device % envs == env {
                        windows.push(window);
                    }
                }
            }
        }
    }

    /// Regional gateway outages: per environment region,
    /// `gateway_outages_per_env` windows during which every sync
    /// attempt in the region fails (the device's retry/backoff
    /// machinery absorbs them), expressed as `BleLoss` fault windows.
    fn compile_gateway_outages(&self, envs: usize, fault_windows: &mut [Vec<FaultWindow>]) {
        for env in 0..envs {
            let mut rng = SplitMix64::new(mix(self.seed ^ GATEWAY_STREAM, env as u64));
            for _ in 0..self.gateway_outages_per_env {
                let start_s = rng.range_f64(0.0, self.duration_s * 0.9);
                let len_s = rng.range_f64(600.0, 3_600.0);
                let window = FaultWindow {
                    kind: FaultKind::BleLoss,
                    start_us: secs_to_us(start_s),
                    end_us: secs_to_us((start_s + len_s).min(self.duration_s)),
                    severity: 0.0,
                };
                for (device, windows) in fault_windows.iter_mut().enumerate() {
                    if device % envs == env {
                        windows.push(window);
                    }
                }
            }
        }
    }

    /// The initially infected set: the `initial_infected` devices with
    /// the smallest seeded hash rank — stable under any shard layout.
    fn seed_infected(&self) -> Vec<u32> {
        let mut ranked: Vec<(u64, u32)> = (0..self.devices as u32)
            .map(|d| (mix(self.seed ^ EPIDEMIC_STREAM, u64::from(d)), d))
            .collect();
        ranked.sort_unstable();
        let mut seeds: Vec<u32> = ranked
            .into_iter()
            .take(self.epidemic.initial_infected.min(self.devices))
            .map(|(_, d)| d)
            .collect();
        seeds.sort_unstable();
        seeds
    }
}

/// Reflects a coordinate back into `[0, max]`.
fn reflect(v: f64, max: f64) -> f64 {
    if v < 0.0 {
        (-v).min(max)
    } else if v > max {
        (2.0 * max - v).max(0.0)
    } else {
        v
    }
}

/// A fully lowered scenario: per-device artifacts plus the epidemic
/// parameters the fleet-level fold needs.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledScenario {
    /// The scenario seed (drives the transmission draws in the fold).
    pub seed: u64,
    /// Fleet size the scenario was compiled for.
    pub devices: usize,
    /// Number of epochs.
    pub epochs: u32,
    /// Epoch length, microseconds.
    pub epoch_us: u64,
    /// Per-edge transmission probability.
    pub transmissibility: f64,
    /// Initially infected device indices, ascending.
    pub seeded: Vec<u32>,
    /// Per-device contact plans, indexed by device.
    pub contacts: Vec<ContactPlan>,
    /// Per-device extra fault windows (weather derates, gateway
    /// outages), indexed by device, sorted like a `FaultPlan`.
    pub fault_windows: Vec<Vec<FaultWindow>>,
    /// The environment list the scenario supplies (replaces the fleet
    /// configuration's default when attached).
    pub environments: Vec<(String, EnvProfile)>,
}

impl CompiledScenario {
    /// Whether `device` starts infected.
    #[must_use]
    pub fn seeded_infected(&self, device: usize) -> bool {
        self.seeded.binary_search(&(device as u32)).is_ok()
    }

    /// The device's contact plan (empty when out of range).
    #[must_use]
    pub fn contact_plan(&self, device: usize) -> ContactPlan {
        self.contacts.get(device).cloned().unwrap_or_default()
    }

    /// The device's extra correlated fault windows.
    #[must_use]
    pub fn device_fault_windows(&self, device: usize) -> &[FaultWindow] {
        self.fault_windows.get(device).map_or(&[], |w| w.as_slice())
    }
}

/// Per-epoch outcome of the epidemic fold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpidemicOutcome {
    /// Devices infected at the start (hash-rank seeded).
    pub seeded: u64,
    /// Total devices infected by the end (seeded + secondary).
    pub infected: u64,
    /// Newly infected devices per epoch (secondary transmissions only).
    pub newly_per_epoch: Vec<u64>,
}

impl EpidemicOutcome {
    /// Final attack rate: infected fraction of the fleet.
    #[must_use]
    pub fn attack_rate(&self, devices: u64) -> f64 {
        self.infected as f64 / devices.max(1) as f64
    }
}

/// The deterministic cross-device exchange: iterates the epochs in
/// lockstep, merging the observed contact edges **in device-index
/// order** within each epoch, and spreads infection along them.
/// Transmission over an edge is a pure hash draw from
/// `(seed, epoch, device, peer)`, so the fold is a pure function of the
/// merged edge set — the in-process runner and the multi-process
/// coordinator compute the identical outcome from identical edges,
/// which is exactly what the digest certifies.
///
/// Infections activate at epoch *boundaries*: a device infected during
/// epoch `e` only transmits from epoch `e + 1` on (the barrier
/// re-broadcast), which is what makes the per-epoch fold equivalent to
/// a lockstep simulation.
#[must_use]
pub fn run_epidemic(scenario: &CompiledScenario, edges: &[ContactEdge]) -> EpidemicOutcome {
    let devices = scenario.devices;
    let mut infected = vec![false; devices];
    for &d in &scenario.seeded {
        if let Some(slot) = infected.get_mut(d as usize) {
            *slot = true;
        }
    }
    let mut sorted: Vec<ContactEdge> = edges.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut newly_per_epoch = Vec::with_capacity(scenario.epochs as usize);
    let mut cursor = 0usize;
    for epoch in 0..scenario.epochs {
        let mut fresh: Vec<u32> = Vec::new();
        while cursor < sorted.len() && sorted[cursor].epoch == epoch {
            let e = sorted[cursor];
            cursor += 1;
            let (d, p) = (e.device as usize, e.peer as usize);
            if d >= devices || p >= devices || infected[d] || !infected[p] {
                continue;
            }
            let draw = mix(
                mix(scenario.seed ^ TRANSMIT_STREAM, u64::from(epoch)),
                (u64::from(e.device) << 32) | u64::from(e.peer),
            );
            if (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < scenario.transmissibility {
                fresh.push(e.device);
            }
        }
        // Barrier: newly infected devices activate for the *next* epoch.
        fresh.sort_unstable();
        fresh.dedup();
        for d in &fresh {
            infected[*d as usize] = true;
        }
        newly_per_epoch.push(fresh.len() as u64);
    }
    EpidemicOutcome {
        seeded: scenario.seeded.len() as u64,
        infected: infected.iter().filter(|&&i| i).count() as u64,
        newly_per_epoch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Scenario {
        let mut s = Scenario::epidemic(48, 2020);
        s.duration_s = 6.0 * 3_600.0;
        s
    }

    #[test]
    fn compilation_is_pure() {
        let a = small().compile();
        let b = small().compile();
        assert_eq!(a, b);
        let mut other = small();
        other.seed = 2021;
        let c = other.compile();
        assert_ne!(a.contacts, c.contacts);
    }

    #[test]
    fn contact_plans_are_symmetric_sorted_and_capped() {
        let s = small();
        let c = s.compile();
        let mut total = 0usize;
        for (d, plan) in c.contacts.iter().enumerate() {
            total += plan.entries.len();
            let mut last = (0, 0);
            let mut per_epoch = std::collections::BTreeMap::new();
            for e in &plan.entries {
                assert!(e.peer != d as u32, "no self-contacts");
                assert!(e.end_us > e.start_us);
                assert!((e.start_us, e.peer) >= last, "entries sorted");
                last = (e.start_us, e.peer);
                assert!((-127..=0).contains(&e.rssi_dbm));
                *per_epoch.entry(e.start_us / c.epoch_us).or_insert(0usize) += 1;
                // Symmetry: the peer carries the same window back.
                assert!(c.contacts[e.peer as usize].entries.iter().any(|r| {
                    r.peer == d as u32 && r.start_us == e.start_us && r.end_us == e.end_us
                }));
            }
            for (_, n) in per_epoch {
                assert!(n <= s.max_contacts_per_epoch);
            }
        }
        assert!(total > 0, "the epidemic preset must produce contacts");
    }

    #[test]
    fn correlated_windows_group_by_environment() {
        let s = small();
        let c = s.compile();
        let envs = s.environments.len();
        for (d, windows) in c.fault_windows.iter().enumerate() {
            assert!(windows
                .windows(2)
                .all(|w| (w[0].start_us, w[0].kind.index()) <= (w[1].start_us, w[1].kind.index())));
            // Every device in the same environment shares the same windows.
            let twin = (d + envs) % c.devices;
            if twin % envs == d % envs {
                assert_eq!(windows, &c.fault_windows[twin]);
            }
            assert!(windows.iter().any(|w| w.kind == FaultKind::SolarOcclusion));
            assert!(windows.iter().any(|w| w.kind == FaultKind::BleLoss));
        }
    }

    #[test]
    fn seeding_is_a_stable_subset() {
        let c = small().compile();
        assert_eq!(c.seeded.len(), 48 / 25);
        assert!(c.seeded.windows(2).all(|w| w[0] < w[1]));
        for &d in &c.seeded {
            assert!(c.seeded_infected(d as usize));
        }
    }

    #[test]
    fn epidemic_fold_is_order_invariant_and_monotone() {
        let c = small().compile();
        // Build the full observed-edge set (every entry observed).
        let mut edges = Vec::new();
        for (d, plan) in c.contacts.iter().enumerate() {
            for e in &plan.entries {
                edges.push(ContactEdge {
                    epoch: (e.start_us / c.epoch_us) as u32,
                    device: d as u32,
                    peer: e.peer,
                });
            }
        }
        let forward = run_epidemic(&c, &edges);
        let mut shuffled = edges.clone();
        shuffled.reverse();
        assert_eq!(forward, run_epidemic(&c, &shuffled));
        assert!(forward.infected >= forward.seeded);
        assert_eq!(
            forward.infected,
            forward.seeded + forward.newly_per_epoch.iter().sum::<u64>()
        );
        // No edges → no spread.
        let none = run_epidemic(&c, &[]);
        assert_eq!(none.infected, none.seeded);
    }

    #[test]
    fn infection_waits_for_the_epoch_barrier() {
        // d1 infects d2 in epoch 0; d2 meets d3 in the SAME epoch — the
        // barrier means d3 cannot catch it until d2 re-broadcasts in a
        // later epoch.
        let mut s = small();
        s.epidemic.initial_infected = 1;
        s.epidemic.transmissibility = 1.0;
        let mut c = s.compile();
        let seed0 = c.seeded[0];
        let others: Vec<u32> = (0..3u32).map(|i| (seed0 + 1 + i) % 48).collect();
        let edges = [
            ContactEdge {
                epoch: 0,
                device: others[0],
                peer: seed0,
            },
            ContactEdge {
                epoch: 0,
                device: others[1],
                peer: others[0],
            },
            ContactEdge {
                epoch: 1,
                device: others[1],
                peer: others[0],
            },
        ];
        c.transmissibility = 1.0;
        let out = run_epidemic(&c, &edges);
        assert_eq!(out.newly_per_epoch[0], 1, "only the direct contact");
        assert_eq!(out.newly_per_epoch[1], 1, "second hop after the barrier");
        assert_eq!(out.infected, 3);
    }

    #[test]
    fn paper_environment_list_is_data_driven() {
        let envs = paper_environments();
        assert_eq!(envs.len(), 3);
        assert_eq!(envs[0].0, "indoor-6h");
        assert!((envs[2].1.duration_s() - 86_400.0).abs() < 1e-9);
        let s = Scenario::epidemic(8, 1);
        assert_eq!(s.environments, envs);
    }
}
