//! Property tests for the log-linear histogram: `merge` must be an
//! exact monoid on canonical histograms — associative and commutative
//! bucket-by-bucket, with the empty histogram as identity, and
//! identical to recording the concatenated sample streams. This is the
//! algebra that makes the fleet metrics snapshot bit-identical across
//! any shard/thread topology.

use iw_metrics::{bucket_bounds, bucket_index, Histogram, MAX_BUCKETS};
use proptest::prelude::*;

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

fn merged(a: &Histogram, b: &Histogram) -> Histogram {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_is_associative_bucket_exact(
        a in prop::collection::vec(any::<u64>(), 0..64),
        b in prop::collection::vec(any::<u64>(), 0..64),
        c in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // A ⊕ (B ⊕ C) == (A ⊕ B) ⊕ C — derived Eq compares every
        // bucket count plus the carried scalars, so this is exact.
        let left = merged(&ha, &merged(&hb, &hc));
        let right = merged(&merged(&ha, &hb), &hc);
        prop_assert_eq!(&left, &right);
        // Commutative too, and equal to one histogram over the
        // concatenated sample stream — merge order can never leak into
        // a fleet snapshot.
        prop_assert_eq!(&merged(&hc, &merged(&hb, &ha)), &left);
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&hist_of(&all), &left);
    }

    #[test]
    fn empty_histogram_is_the_merge_identity(
        a in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let h = hist_of(&a);
        prop_assert_eq!(&merged(&h, &Histogram::new()), &h);
        prop_assert_eq!(&merged(&Histogram::new(), &h), &h);
    }

    #[test]
    fn bucket_index_inverts_bounds_and_bounds_error(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < MAX_BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        // ≤ 1/16 relative width: the documented resolution bound.
        prop_assert!((hi - lo) as f64 <= (lo as f64 / 16.0).max(1.0));
    }

    #[test]
    fn wire_round_trip_preserves_every_bucket(
        a in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let h = hist_of(&a);
        let pairs: Vec<(u16, u64)> = h.sparse().collect();
        let (count, sum, min, max) = h.scalars();
        let back = Histogram::from_parts(count, sum, min, max, &pairs)
            .expect("canonical parts re-validate");
        prop_assert_eq!(&back, &h);
    }
}
