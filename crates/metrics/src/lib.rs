//! `iw-metrics`: operational telemetry for the InfiniWolf fleet stack.
//!
//! Three layers, all dependency-free:
//!
//! 1. [`Histogram`] — log-linear, `u64`-valued, with *exact* mergeable
//!    buckets (element-wise `u64` addition), so fleet-level
//!    distributions are bit-identical across shard/thread topology just
//!    like the scalar digest algebra in `iw-sim::fleet`.
//! 2. [`Registry`] — named, atomically-updated [`Counter`]s and
//!    [`Gauge`]s plus locked [`HistogramHandle`]s for live runtime
//!    telemetry (coordinator progress, bench gauges).
//! 3. [`Snapshot`] — a frozen, sorted set of samples with
//!    [Prometheus text exposition](Snapshot::to_prometheus), a
//!    [JSON export](Snapshot::to_json) of the same schema, and a
//!    human [summary table](Snapshot::render_table).
//!
//! Snapshots sort samples by `(name, labels)`, so two snapshots built
//! from the same values render byte-identically — the property the
//! golden Prometheus test in `iw-bench` pins down.

#![warn(missing_docs)]

mod hist;

pub use hist::{bucket_bounds, bucket_index, Histogram, MAX_BUCKETS};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter backed by an [`AtomicU64`].
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge stored as bits in an [`AtomicU64`].
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A shared, lock-guarded [`Histogram`] for live recording from
/// multiple threads. Hot per-event paths in the simulator own plain
/// `Histogram`s instead; this handle is for coarse runtime telemetry
/// (heartbeats, bench rows) where a mutex is irrelevant.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.0.lock().expect("metrics lock").record(v);
    }

    /// Clones the current contents.
    pub fn snapshot(&self) -> Histogram {
        self.0.lock().expect("metrics lock").clone()
    }
}

/// One sampled value in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Monotonic count.
    Counter(u64),
    /// Instantaneous value.
    Gauge(f64),
    /// Full distribution.
    Histogram(Histogram),
}

/// A named sample: metric name, sorted label pairs, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (`snake_case`, no label braces).
    pub name: String,
    /// Label `(key, value)` pairs; kept sorted by key.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: Value,
}

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    slot: Slot,
}

/// A registry of live metric handles. Handles are cheap clones of
/// shared atomics; [`Registry::snapshot`] freezes the current values.
///
/// Registering the same `(name, labels)` twice returns the *same*
/// underlying handle, so independent call sites accumulate into one
/// series.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        out.sort();
        out
    }

    fn slot<T: Clone>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        get: impl Fn(&Slot) -> Option<T>,
        make: impl FnOnce() -> (T, Slot),
    ) -> T {
        let labels = Self::sorted_labels(labels);
        let mut entries = self.entries.lock().expect("metrics lock");
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Some(t) = get(&e.slot) {
                    return t;
                }
                panic!("metric {name} re-registered with a different type");
            }
        }
        let (handle, slot) = make();
        entries.push(Entry {
            name: name.to_string(),
            labels,
            slot,
        });
        handle
    }

    /// Returns (registering on first use) the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.slot(
            name,
            labels,
            |s| match s {
                Slot::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::default();
                (c.clone(), Slot::Counter(c))
            },
        )
    }

    /// Returns (registering on first use) the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.slot(
            name,
            labels,
            |s| match s {
                Slot::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::default();
                (g.clone(), Slot::Gauge(g))
            },
        )
    }

    /// Returns (registering on first use) the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        self.slot(
            name,
            labels,
            |s| match s {
                Slot::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = HistogramHandle::default();
                (h.clone(), Slot::Histogram(h))
            },
        )
    }

    /// Freezes the current values into a sorted [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().expect("metrics lock");
        let mut snap = Snapshot::new();
        for e in entries.iter() {
            let value = match &e.slot {
                Slot::Counter(c) => Value::Counter(c.get()),
                Slot::Gauge(g) => Value::Gauge(g.get()),
                Slot::Histogram(h) => Value::Histogram(h.snapshot()),
            };
            snap.samples.push(Sample {
                name: e.name.clone(),
                labels: e.labels.clone(),
                value,
            });
        }
        snap.sort();
        snap
    }
}

/// A frozen, renderable set of metric samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// The samples, sorted by `(name, labels)`.
    pub samples: Vec<Sample>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample (call [`Snapshot::sort`] after bulk insertion).
    pub fn push(&mut self, name: &str, labels: &[(&str, &str)], value: Value) {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        self.samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }

    /// Sorts samples into the canonical `(name, labels)` order that
    /// makes renders deterministic.
    pub fn sort(&mut self) {
        self.samples
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    }

    /// Appends all samples of `other`, then re-sorts.
    pub fn extend(&mut self, other: Snapshot) {
        self.samples.extend(other.samples);
        self.sort();
    }

    fn label_block(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
        let mut parts: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
            .collect();
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{}\"", escape(&v)));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }

    /// Renders the [Prometheus text exposition format]. Histograms emit
    /// cumulative `_bucket{le=…}` series over the non-empty buckets
    /// (bucket upper bounds as `le`), a `+Inf` bucket, `_sum` and
    /// `_count`. Deterministic: same samples → same bytes.
    ///
    /// [Prometheus text exposition format]:
    ///     https://prometheus.io/docs/instrumenting/exposition_formats/
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for s in &self.samples {
            let kind = match s.value {
                Value::Counter(_) => "counter",
                Value::Gauge(_) => "gauge",
                Value::Histogram(_) => "histogram",
            };
            if s.name != last_name {
                out.push_str(&format!("# TYPE {} {kind}\n", s.name));
                last_name = &s.name;
            }
            match &s.value {
                Value::Counter(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        s.name,
                        Self::label_block(&s.labels, None)
                    ));
                }
                Value::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        s.name,
                        Self::label_block(&s.labels, None),
                        fmt_f64(*v)
                    ));
                }
                Value::Histogram(h) => {
                    let mut cum = 0u64;
                    for (_, upper, n) in h.nonzero_buckets() {
                        cum += n;
                        out.push_str(&format!(
                            "{}_bucket{} {cum}\n",
                            s.name,
                            Self::label_block(&s.labels, Some(("le", upper.to_string())))
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        s.name,
                        Self::label_block(&s.labels, Some(("le", "+Inf".into()))),
                        h.count()
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        s.name,
                        Self::label_block(&s.labels, None),
                        h.sum()
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        s.name,
                        Self::label_block(&s.labels, None),
                        h.count()
                    ));
                }
            }
        }
        out
    }

    /// Renders the same data as a JSON array — one object per sample
    /// with `name`, `labels`, `type`, and a type-specific payload
    /// (histograms carry scalars plus sparse `[index, count]` buckets).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {\"name\":");
            out.push_str(&json_str(&s.name));
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in s.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(k));
                out.push(':');
                out.push_str(&json_str(v));
            }
            out.push('}');
            match &s.value {
                Value::Counter(v) => {
                    out.push_str(&format!(",\"type\":\"counter\",\"value\":{v}"));
                }
                Value::Gauge(v) => {
                    out.push_str(&format!(",\"type\":\"gauge\",\"value\":{}", fmt_f64(*v)));
                }
                Value::Histogram(h) => {
                    let (count, sum, min, max) = h.scalars();
                    out.push_str(&format!(
                        ",\"type\":\"histogram\",\"count\":{count},\"sum\":{sum}"
                    ));
                    if count > 0 {
                        out.push_str(&format!(",\"min\":{min},\"max\":{max}"));
                    }
                    out.push_str(",\"buckets\":[");
                    for (j, (idx, n)) in h.sparse().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{idx},{n}]"));
                    }
                    out.push_str("]}");
                    continue;
                }
            }
            out.push('}');
        }
        out.push_str("\n]");
        out
    }

    /// Renders a human summary table: scalars as `name value`,
    /// histograms as count/mean/quantile rows.
    pub fn render_table(&self) -> String {
        let mut rows: Vec<[String; 7]> = vec![[
            "metric".into(),
            "count".into(),
            "mean".into(),
            "p50".into(),
            "p99".into(),
            "min".into(),
            "max".into(),
        ]];
        let mut scalars: Vec<(String, String)> = Vec::new();
        for s in &self.samples {
            let labeled = format!("{}{}", s.name, Self::label_block(&s.labels, None));
            match &s.value {
                Value::Counter(v) => scalars.push((labeled, v.to_string())),
                Value::Gauge(v) => scalars.push((labeled, fmt_f64(*v))),
                Value::Histogram(h) => rows.push([
                    labeled,
                    h.count().to_string(),
                    format!("{:.1}", h.mean()),
                    h.quantile(0.5).map_or("-".into(), |v| v.to_string()),
                    h.quantile(0.99).map_or("-".into(), |v| v.to_string()),
                    h.min().map_or("-".into(), |v| v.to_string()),
                    h.max().map_or("-".into(), |v| v.to_string()),
                ]),
            }
        }
        let mut widths = [0usize; 7];
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        for (k, v) in &scalars {
            out.push_str(&format!("{k} = {v}\n"));
        }
        if rows.len() > 1 {
            for row in &rows {
                let line: Vec<String> = row
                    .iter()
                    .zip(widths)
                    .map(|(cell, w)| format!("{cell:<w$}"))
                    .collect();
                out.push_str(line.join("  ").trim_end());
                out.push('\n');
            }
        }
        out
    }
}

/// Formats an `f64` the way both exporters need it: shortest lossless
/// decimal via Rust's `{}` (which round-trips), with non-finite values
/// spelled for JSON-compat as quoted-free Prometheus tokens.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        }
    } else {
        format!("{v}")
    }
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Minimal JSON string quoting (control chars, quote, backslash).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_dedups_handles() {
        let reg = Registry::new();
        let a = reg.counter("x_total", &[("k", "v")]);
        let b = reg.counter("x_total", &[("k", "v")]);
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.samples.len(), 1);
        assert_eq!(snap.samples[0].value, Value::Counter(3));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn registry_rejects_type_confusion() {
        let reg = Registry::new();
        reg.counter("x", &[]);
        reg.gauge("x", &[]);
    }

    #[test]
    fn prometheus_render_is_deterministic_and_sorted() {
        let mut snap = Snapshot::new();
        snap.push("b_total", &[], Value::Counter(2));
        snap.push("a_gauge", &[("zz", "1"), ("aa", "2")], Value::Gauge(1.5));
        snap.sort();
        let text = snap.to_prometheus();
        assert_eq!(
            text,
            "# TYPE a_gauge gauge\na_gauge{aa=\"2\",zz=\"1\"} 1.5\n\
             # TYPE b_total counter\nb_total 2\n"
        );
        assert_eq!(text, snap.clone().to_prometheus());
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(1);
        h.record(100);
        let mut snap = Snapshot::new();
        snap.push("lat_us", &[], Value::Histogram(h));
        let text = snap.to_prometheus();
        assert!(text.contains("lat_us_bucket{le=\"1\"} 2\n"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("lat_us_sum 102\n"), "{text}");
        assert!(text.contains("lat_us_count 3\n"), "{text}");
        // The le=100-containing bucket is cumulative (2 + 1).
        let le_100: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("lat_us_bucket") && !l.contains("+Inf"))
            .collect();
        assert_eq!(le_100.len(), 2);
        assert!(le_100[1].ends_with(" 3"), "{le_100:?}");
    }

    #[test]
    fn json_render_carries_sparse_buckets() {
        let mut h = Histogram::new();
        h.record_n(3, 4);
        let mut snap = Snapshot::new();
        snap.push("x", &[("k", "v\"q")], Value::Histogram(h));
        let json = snap.to_json();
        assert!(json.contains("\"buckets\":[[3,4]]"), "{json}");
        assert!(json.contains("\"k\":\"v\\\"q\""), "{json}");
        iw_validate_json(&json);
    }

    /// Tiny structural JSON validator mirroring iw-trace's: brackets,
    /// braces and strings must balance.
    fn iw_validate_json(s: &str) {
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '[' | '{' => depth += 1,
                ']' | '}' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn table_renders_scalars_and_histograms() {
        let mut h = Histogram::new();
        h.record(10);
        let mut snap = Snapshot::new();
        snap.push("events_total", &[], Value::Counter(5));
        snap.push("depth", &[], Value::Histogram(h));
        snap.sort();
        let table = snap.render_table();
        assert!(table.contains("events_total = 5"), "{table}");
        assert!(table.contains("depth"), "{table}");
        assert!(table.contains("p99"), "{table}");
    }
}
