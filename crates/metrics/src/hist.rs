//! Log-linear histogram with *exact*, mergeable buckets.
//!
//! The fleet digest algebra (`iw-sim::fleet`) proves scalar aggregates
//! are topology-invariant; distributions need the same property. A
//! histogram of `u64` values is mergeable bit-exactly iff (a) the
//! bucket boundaries are a pure function of the value — no adaptive
//! resizing, no centroid drift — and (b) merge is element-wise `u64`
//! addition, which is associative and commutative. This module picks
//! the classic log-linear layout (HdrHistogram-style): 16 linear
//! sub-buckets per power-of-two octave, giving ≤ 6.25 % relative error
//! over the full `u64` range with at most 976 buckets, values `< 16`
//! stored exactly.

/// Sub-bucket resolution: each octave `[2^e, 2^{e+1})` is split into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;

/// Maximum bucket index + 1 for any `u64` value (`index(u64::MAX) + 1`).
pub const MAX_BUCKETS: usize = SUB + (63 - SUB_BITS as usize + 1) * SUB;

/// Bucket index for a value: identity below 16, then
/// `16 + (exp − 4)·16 + sub` where `exp` is the position of the leading
/// bit and `sub` the next four bits below it.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let sub = ((v >> (exp - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        SUB + (exp - SUB_BITS) as usize * SUB + sub
    }
}

/// Inclusive `(lower, upper)` value range covered by bucket `i`.
///
/// Exact singletons below 16; otherwise a `2^{exp−4}`-wide slice of the
/// octave. `upper` saturates at `u64::MAX` in the final bucket.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB {
        (i as u64, i as u64)
    } else {
        let exp = SUB_BITS + ((i - SUB) / SUB) as u32;
        let sub = ((i - SUB) % SUB) as u64;
        let width = 1u64 << (exp - SUB_BITS);
        let lower = (SUB as u64 + sub) << (exp - SUB_BITS);
        (lower, lower.saturating_add(width - 1))
    }
}

/// A mergeable log-linear histogram of `u64` values.
///
/// `merge` is element-wise addition on a canonical dense bucket vector
/// (no trailing zeros), so `A ⊕ (B ⊕ C) == (A ⊕ B) ⊕ C` holds
/// *bucket-exactly* — the property the fleet topology test asserts.
/// `sum` is kept in `u128` so it cannot overflow or lose precision;
/// `min`/`max` are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` observations of `v` in one step.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let i = bucket_index(v);
        if self.buckets.len() <= i {
            self.buckets.resize(i + 1, 0);
        }
        self.buckets[i] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Element-wise merge; exact and associative.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile (`0 ≤ q ≤ 1`),
    /// clamped to the exact observed `min`/`max`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (_, upper) = bucket_bounds(i);
                return Some(upper.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Iterates the non-empty buckets as `(lower, upper, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, n)
            })
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sparse `(bucket_index, count)` pairs — the wire representation
    /// used by `iw-sim::record`.
    pub fn sparse(&self) -> impl Iterator<Item = (u16, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u16, n))
    }

    /// Rebuilds a histogram from its carried scalars and sparse bucket
    /// pairs, validating internal consistency (bucket counts must sum to
    /// `count`, indices must be in range and strictly increasing, and
    /// `min`/`max` must bracket the populated buckets). Returns `None`
    /// on malformed input so codecs can reject corrupt frames.
    pub fn from_parts(
        count: u64,
        sum: u128,
        min: u64,
        max: u64,
        pairs: &[(u16, u64)],
    ) -> Option<Histogram> {
        if count == 0 {
            if sum != 0 || min != u64::MAX || max != 0 || !pairs.is_empty() {
                return None;
            }
            return Some(Histogram::new());
        }
        if pairs.is_empty() || min > max {
            return None;
        }
        let mut buckets = Vec::new();
        let mut total = 0u64;
        let mut last: Option<u16> = None;
        for &(i, n) in pairs {
            if (i as usize) >= MAX_BUCKETS || n == 0 || last.is_some_and(|p| p >= i) {
                return None;
            }
            last = Some(i);
            buckets.resize(i as usize + 1, 0);
            buckets[i as usize] = n;
            total = total.checked_add(n)?;
        }
        if total != count {
            return None;
        }
        // min/max must land in the first/last populated buckets.
        let first = pairs[0].0 as usize;
        let last = pairs[pairs.len() - 1].0 as usize;
        if bucket_index(min) != first || bucket_index(max) != last {
            return None;
        }
        Some(Histogram {
            buckets,
            count,
            sum,
            min,
            max,
        })
    }

    /// Raw carried scalars `(count, sum, min, max)` for the codec.
    pub fn scalars(&self) -> (u64, u128, u64, u64) {
        (self.count, self.sum, self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0u64..16 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bounds_invert_index() {
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1000,
            65_535,
            1 << 40,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} i={i} lo={lo} hi={hi}");
            assert!(i < MAX_BUCKETS);
        }
    }

    #[test]
    fn buckets_tile_the_line() {
        // Consecutive buckets must be contiguous: upper(i) + 1 == lower(i+1).
        for i in 0..MAX_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo, _) = bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo, "gap between bucket {i} and {}", i + 1);
        }
        assert_eq!(bucket_bounds(MAX_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 1_000, 123_456, 1 << 33, (1 << 50) + 12345] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            let width = hi - lo;
            assert!((width as f64) <= v as f64 / 16.0, "v={v} width={width}");
        }
    }

    #[test]
    fn record_merge_and_stats() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            a.record(v);
        }
        for v in [5u64, 1000, 1000] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 7);
        assert_eq!(merged.sum(), 1 + 2 + 3 + 100 + 5 + 1000 + 1000);
        assert_eq!(merged.min(), Some(1));
        assert_eq!(merged.max(), Some(1000));
        assert_eq!(merged.quantile(0.0), Some(1));
        assert_eq!(merged.quantile(1.0), Some(1000));
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        assert_eq!(h.quantile(0.5), Some(1_000_000));
        assert_eq!(h.min(), Some(1_000_000));
        assert_eq!(h.max(), Some(1_000_000));
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = Histogram::new();
        for v in [0u64, 7, 900, 1 << 20, u64::MAX] {
            h.record_n(v, 3);
        }
        let (count, sum, min, max) = h.scalars();
        let pairs: Vec<_> = h.sparse().collect();
        let back = Histogram::from_parts(count, sum, min, max, &pairs).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn from_parts_rejects_malformed() {
        // count mismatch
        assert!(Histogram::from_parts(3, 0, 1, 1, &[(1, 2)]).is_none());
        // zero-count bucket
        assert!(Histogram::from_parts(1, 1, 1, 1, &[(1, 0)]).is_none());
        // unsorted indices
        assert!(Histogram::from_parts(2, 3, 1, 2, &[(2, 1), (1, 1)]).is_none());
        // out-of-range index
        assert!(Histogram::from_parts(1, 1, 1, 1, &[(u16::MAX, 1)]).is_none());
        // min outside first bucket
        assert!(Histogram::from_parts(1, 5, 0, 5, &[(5, 1)]).is_none());
        // non-empty scalars with empty pairs
        assert!(Histogram::from_parts(1, 1, 1, 1, &[]).is_none());
        // empty histogram must carry the canonical scalars
        assert!(Histogram::from_parts(0, 1, u64::MAX, 0, &[]).is_none());
        assert_eq!(
            Histogram::from_parts(0, 0, u64::MAX, 0, &[]),
            Some(Histogram::new())
        );
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
        let mut m = Histogram::new();
        m.merge(&h);
        assert_eq!(m, Histogram::new());
    }
}
