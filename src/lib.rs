//! Workspace-level umbrella for the InfiniWolf reproduction.
//!
//! This crate exists to host the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. The actual library surface
//! lives in the member crates, chiefly [`infiniwolf`].

pub use infiniwolf;
