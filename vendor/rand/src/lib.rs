//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses: a
//! deterministic seedable generator (`StdRng`), uniform sampling over
//! numeric ranges (`Rng::gen_range`), and in-place slice shuffling
//! (`seq::SliceRandom::shuffle`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! distributed, and reproducible across platforms. Streams differ from
//! the upstream `rand` crate, which is acceptable here: every consumer in
//! the workspace seeds explicitly and asserts properties of its own
//! output, never golden values of the upstream RNG stream.

/// Core random-value source: 64 bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a range (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = sample_u128_below(rng, span);
                (low as i128 + v as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = sample_u128_below(rng, span);
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, bound)` by widening multiply (bound ≤ 2^64).
fn sample_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0 && bound <= 1 << 64);
    let x = rng.next_u64() as u128;
    (x * bound) >> 64
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high - low)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T: SampleUniform> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns a uniformly random value in `range`.
    fn gen_range<T, Rge>(&mut self, range: Rge) -> T
    where
        T: SampleUniform,
        Rge: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic generator matching the role of `rand::rngs::StdRng`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Subset of `rand::seq::SliceRandom`: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly using `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let g = rng.gen_range(-3.0f32..=3.0);
            assert!((-3.0..=3.0).contains(&g));
            let i = rng.gen_range(-7i32..9);
            assert!((-7..9).contains(&i));
            let u = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&u));
        }
    }

    #[test]
    fn float_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let f = rng.gen_range(0.0f64..1.0);
            lo_seen |= f < 0.1;
            hi_seen |= f > 0.9;
        }
        assert!(lo_seen && hi_seen, "samples should span the unit interval");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle should move something");
    }
}
