//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `criterion` its benches use:
//! `Criterion::benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is real but simple: each sample times a calibrated batch
//! of iterations with `std::time::Instant`, and the per-iteration mean,
//! median and throughput of the samples are printed. There is no
//! statistical regression analysis, HTML report, or baseline storage.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier re-exported from the standard library.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 20,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, 20, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&id.into().label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, preventing the result being optimised out.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Calibrate the batch size so one sample takes on the order of 10 ms,
    // bounding total runtime while keeping Instant overhead negligible.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
            break;
        }
        iters = if b.elapsed.is_zero() {
            iters * 16
        } else {
            let target = Duration::from_millis(12).as_nanos();
            let scale = target / b.elapsed.as_nanos().max(1);
            (iters.saturating_mul(scale.clamp(2, 16) as u64)).min(1 << 20)
        };
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));

    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let mut line = String::new();
    let _ = write!(
        line,
        "  {label:<40} median {:>12}  mean {:>12}  ({} samples x {} iters)",
        fmt_time(median),
        fmt_time(mean),
        samples,
        iters
    );
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_api_works() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter(3), |b| b.iter(|| 3 * 3));
        group.finish();
    }
}
