//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `proptest` its tests use: the
//! [`Strategy`] trait over numeric ranges / tuples / `prop_map` /
//! `prop_oneof!`, `any::<T>()` for primitive integers,
//! `prop::collection::vec`, and the `proptest!` test macro with
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Unlike upstream proptest this subset does **not** shrink failing
//! inputs — a failure reports the generated values and panics. Case
//! generation is deterministic per test (seeded from the test name), so
//! failures reproduce exactly on re-run.

use rand::rngs::StdRng;
use rand::Rng as _;

/// Test-runner configuration and helpers.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    use rand::SeedableRng;

    /// Deterministic source of randomness for strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) super::StdRng);

    impl TestRng {
        /// Seeds the generator from a test-identifying string.
        #[must_use]
        pub fn from_name(name: &str) -> TestRng {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(super::StdRng::seed_from_u64(h))
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of type `Value`.
    ///
    /// Object-safe core (`generate`), with sized combinators provided.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among alternatives; built by `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given arms. Panics if `arms` is empty.
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.0.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (S0 0)
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
        (S0 0, S1 1, S2 2, S3 3, S4 4)
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
    }
}

/// Primitive types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: strategy::Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for a primitive integer type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty => $u:ty),*) => {$(
        impl strategy::Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                rng.0.gen_range(<$u>::MIN..=<$u>::MAX) as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(core::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl strategy::Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut test_runner::TestRng) -> bool {
        rng.0.gen_range(0u8..2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(core::marker::PhantomData)
    }
}

/// Returns the canonical full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Namespaced strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Length specifications accepted by [`vec`].
        pub trait IntoSizeRange {
            /// Draws a length from the specification.
            fn pick_len(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn pick_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn pick_len(&self, rng: &mut TestRng) -> usize {
                rng.0.gen_range(self.clone())
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn pick_len(&self, rng: &mut TestRng) -> usize {
                rng.0.gen_range(self.clone())
            }
        }

        /// Strategy for vectors of `element` values with length in `size`.
        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
            VecStrategy { element, size }
        }

        /// Strategy produced by [`vec`].
        pub struct VecStrategy<S, L> {
            element: S,
            size: L,
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.pick_len(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a test normally imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Uniform choice among strategy arms that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside `proptest!`, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)
            ));
        }
    };
}

/// Asserts equality inside `proptest!`, reporting both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                stringify!($a), stringify!($b), a, b, format!($($fmt)*)
            ));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // No shrinking/retry machinery in this subset: treat the case
            // as vacuously passing rather than re-drawing inputs.
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares property tests over generated inputs.
///
/// Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..100, y in any::<i32>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cfg.cases {
                let mut case_debug = ::std::string::String::new();
                $(
                    let generated = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    case_debug.push_str(&format!(
                        "{} = {:?}; ", stringify!($pat), &generated
                    ));
                    let $pat = generated;
                )*
                let outcome = (|| -> ::core::result::Result<(), ::std::string::String> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  with {}",
                        case + 1, cfg.cases, msg, case_debug
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0u32..10, (a, b) in (0i32..5, 5i32..10)) {
            prop_assert!(x < 10);
            prop_assert!(a < b, "a={} b={}", a, b);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u32), Just(2), (5u32..8).prop_map(|x| x * 10)]) {
            prop_assert!(v == 1 || v == 2 || (50..80).contains(&v));
        }

        #[test]
        fn vectors(v in prop::collection::vec(-1.0f32..1.0, 2..=4)) {
            prop_assert!(v.len() >= 2 && v.len() <= 4);
            for x in &v {
                prop_assert!((-1.0..1.0).contains(x));
            }
        }

        #[test]
        fn assume_skips(x in any::<u32>()) {
            prop_assume!(x.is_multiple_of(2));
            prop_assert_eq!(x % 2, 0);
        }
    }
}
