//! FANN workflow: train a network, save it in FANN `.net` format, reload
//! it, export to fixed point and verify the on-target deployment is
//! bit-exact — the FANNCortexM toolchain, end to end.
//!
//! ```text
//! cargo run --release --example train_and_export
//! ```

use iw_fann::{format, FixedNet, Mlp, Rprop, TrainData};
use iw_kernels::{run_fixed, FixedTarget};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small 2-class problem: point inside/outside a circle.
    let mut rng = StdRng::seed_from_u64(11);
    let mut data = TrainData::new();
    for _ in 0..200 {
        let x: f32 = rng.gen_range(-1.0..1.0);
        let y: f32 = rng.gen_range(-1.0..1.0);
        let inside = if x * x + y * y < 0.5 { 1.0 } else { -1.0 };
        data.push(vec![x, y], vec![inside]);
    }

    let mut net = Mlp::new(&[2, 12, 1]);
    net.randomize_weights(&mut rng, 0.3);
    let (epochs, mse) = Rprop::new(&net).train_until(&mut net, &data, 0.05, 1000);
    println!("trained in {epochs} epochs, mse {mse:.4}");

    // Save / reload through the FANN text format.
    let text = format::write_net(&net);
    println!(
        "FANN .net file: {} bytes, header: {}",
        text.len(),
        text.lines().next().unwrap()
    );
    let reloaded = format::read_net(&text)?;
    assert_eq!(reloaded, net);
    println!("round-trip through FANN_FLO_2.1 format: exact ✓");

    // Fixed-point export and deployment to every target.
    let fixed = FixedNet::export(&reloaded)?;
    println!(
        "fixed-point export: decimal point = {}",
        fixed.decimal_point
    );
    let input = fixed.quantize_input(&[0.3, -0.4]);
    let reference = fixed.forward(&input);
    for target in FixedTarget::paper_targets() {
        let run = run_fixed(target, &fixed, &input)?;
        assert_eq!(run.outputs, reference);
        println!(
            "  {:<18} {:>6} cycles, output {:?} — bit-exact ✓",
            target.name(),
            run.cycles,
            run.outputs
        );
    }
    Ok(())
}
