//! Harvest explorer: evaluate the calibrated harvesting chains across
//! environments — the paper's Table I/II points, interpolation sweeps, and
//! realistic day/week profiles — and translate each into a sustainable
//! stress-detection rate.
//!
//! ```text
//! cargo run --release --example harvest_explorer
//! ```

use infiniwolf::{sustainability, DetectionBudget};
use iw_harvest::{
    daily_intake, EnvProfile, Illuminant, LightCondition, SolarHarvester, TegHarvester,
    ThermalCondition,
};

fn main() {
    let solar = SolarHarvester::infiniwolf();
    let teg = TegHarvester::infiniwolf();
    let budget = DetectionBudget::paper();

    println!("solar chain (battery intake):");
    for (label, light) in [
        ("paper outdoor 30 klx", LightCondition::outdoor()),
        ("paper indoor 700 lx", LightCondition::indoor()),
        (
            "cloudy outdoor 5 klx",
            LightCondition {
                lux: 5_000.0,
                illuminant: Illuminant::Sunlight,
            },
        ),
        (
            "dim hallway 150 lx",
            LightCondition {
                lux: 150.0,
                illuminant: Illuminant::IndoorLed,
            },
        ),
    ] {
        println!(
            "  {label:<24} {:>9.3} mW",
            solar.battery_intake_w(&light) * 1e3
        );
    }

    println!("\nTEG chain (battery intake):");
    for (label, cond) in [
        ("paper warm room", ThermalCondition::warm_room()),
        ("paper cool room", ThermalCondition::cool_room()),
        ("paper cool + 42 km/h", ThermalCondition::cool_windy()),
        (
            "winter walk (5 C, 10 km/h)",
            ThermalCondition {
                ambient_c: 5.0,
                skin_c: 30.0,
                wind_kmh: 10.0,
            },
        ),
    ] {
        println!(
            "  {label:<24} {:>9.2} uW",
            teg.battery_intake_w(&cond) * 1e6
        );
    }

    println!("\nscenario energy balance (per day) and sustainable rate:");
    for (label, profile) in [
        ("paper indoor day", EnvProfile::paper_indoor_day()),
        ("sunny day, 60 klx peak", EnvProfile::sunny_day(60.0)),
        ("office week (per day)", EnvProfile::office_week()),
    ] {
        let intake = daily_intake(&profile, &solar, &teg);
        let days = profile.duration_s() / 86_400.0;
        let report = sustainability(&profile, &solar, &teg, &budget);
        println!(
            "  {label:<24} solar {:>8.2} J  teg {:>6.2} J  -> {:>7.1} det/min",
            intake.solar_j / days,
            intake.teg_j / days,
            report.detections_per_minute
        );
    }
}
