//! A day on the wrist: whole-device discrete-event simulation of
//! detection policies under the paper's indoor scenario and a darker
//! worst case.
//!
//! ```text
//! cargo run --release --example wearable_day
//! ```

use infiniwolf::{detection_costs, sustainability, DetectionBudget, DetectionPolicy, InfiniWolf};
use iw_harvest::{
    EnvProfile, EnvSegment, LightCondition, SolarHarvester, TegHarvester, ThermalCondition,
};
use iw_sim::DeviceConfig;

fn sparkline(socs: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    socs.iter()
        .map(|&s| {
            if s.is_finite() {
                // Clamp before indexing: SoC outside [0, 1] (or a rounding
                // excursion) must never index past the bar table.
                BARS[(s.clamp(0.0, 1.0) * 7.0).round() as usize]
            } else {
                '?'
            }
        })
        .collect()
}

/// Down-samples the trace to at most `max` evenly spaced points. A trace
/// shorter than `max` is passed through untouched.
fn downsample(socs: &[f64], max: usize) -> Vec<f64> {
    if socs.len() <= max {
        return socs.to_vec();
    }
    let step = socs.len().div_ceil(max);
    socs.iter().step_by(step).copied().collect()
}

fn run_scenario(name: &str, profile: &EnvProfile, policy: DetectionPolicy, start_soc: f64) {
    let dev = InfiniWolf::new();
    let mut cfg = DeviceConfig::new(
        profile.clone(),
        policy,
        detection_costs(&DetectionBudget::paper()),
    );
    cfg.solar = dev.solar;
    cfg.teg = dev.teg;
    cfg.battery.set_soc(start_soc);
    cfg.sleep_floor_w = dev.battery_power_w(infiniwolf::DeviceMode::Sleep);
    let report = cfg.run();
    let socs: Vec<f64> = report.sim.trace.iter().map(|p| p.soc).collect();
    println!("\n{name}");
    println!("  policy: {policy:?}");
    println!("  soc  {}", sparkline(&downsample(&socs, 48)));
    println!(
        "  start {:.0}% → end {:.0}%   harvested {:.2} J, consumed {:.2} J",
        start_soc * 100.0,
        report.sim.final_soc * 100.0,
        report.sim.stored_j,
        report.sim.consumed_j,
    );
    println!(
        "  {} detections across {} engine events{}",
        report.detections,
        report.events,
        if report.sim.browned_out {
            "  ⚠ BROWN-OUT"
        } else {
            ""
        }
    );
}

fn main() {
    let indoor = EnvProfile::paper_indoor_day();
    let report = sustainability(
        &indoor,
        &SolarHarvester::infiniwolf(),
        &TegHarvester::infiniwolf(),
        &DetectionBudget::paper(),
    );
    println!(
        "steady-state limit indoors: {:.1} detections/minute",
        report.detections_per_minute
    );

    run_scenario(
        "indoor day, sustainable fixed rate (80% of the limit)",
        &indoor,
        DetectionPolicy::FixedRate {
            per_minute: report.detections_per_minute * 0.8,
        },
        0.5,
    );
    run_scenario(
        "indoor day, greedy fixed rate (3x the limit)",
        &indoor,
        DetectionPolicy::FixedRate {
            per_minute: report.detections_per_minute * 3.0,
        },
        0.5,
    );

    // A dark week: the energy-aware policy throttles instead of dying.
    let dark_week = EnvProfile {
        segments: vec![EnvSegment {
            duration_s: 7.0 * 86_400.0,
            light: LightCondition::dark(),
            thermal: ThermalCondition::warm_room(),
        }],
    };
    run_scenario(
        "dark week, greedy fixed rate",
        &dark_week,
        DetectionPolicy::FixedRate { per_minute: 60.0 },
        0.9,
    );
    run_scenario(
        "dark week, energy-aware policy",
        &dark_week,
        DetectionPolicy::EnergyAware {
            max_per_minute: 60.0,
            min_soc: 0.15,
        },
        0.9,
    );
}
