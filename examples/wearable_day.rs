//! A day on the wrist: battery-coupled simulation of detection policies
//! under the paper's indoor scenario and a darker worst case.
//!
//! ```text
//! cargo run --release --example wearable_day
//! ```

use infiniwolf::{simulate_policy, sustainability, DetectionBudget, DetectionPolicy, InfiniWolf};
use iw_harvest::{
    Battery, EnvProfile, EnvSegment, LightCondition, SolarHarvester, TegHarvester, ThermalCondition,
};

fn sparkline(socs: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    socs.iter()
        .map(|&s| BARS[((s * 7.0).round() as usize).min(7)])
        .collect()
}

fn run_scenario(name: &str, profile: &EnvProfile, policy: DetectionPolicy, start_soc: f64) {
    let dev = InfiniWolf::new();
    let budget = DetectionBudget::paper();
    let mut battery = Battery::infiniwolf();
    battery.set_soc(start_soc);
    let sleep_floor = dev.battery_power_w(infiniwolf::DeviceMode::Sleep);
    let sim = simulate_policy(
        profile,
        &dev.solar,
        &dev.teg,
        &mut battery,
        &budget,
        policy,
        sleep_floor,
    );
    let socs: Vec<f64> = sim
        .trace
        .iter()
        .step_by((sim.trace.len() / 48).max(1))
        .map(|p| p.soc)
        .collect();
    println!("\n{name}");
    println!("  policy: {policy:?}");
    println!("  soc  {}", sparkline(&socs));
    println!(
        "  start {:.0}% → end {:.0}%   harvested {:.2} J, consumed {:.2} J{}",
        start_soc * 100.0,
        sim.final_soc * 100.0,
        sim.stored_j,
        sim.consumed_j,
        if sim.browned_out {
            "  ⚠ BROWN-OUT"
        } else {
            ""
        }
    );
}

fn main() {
    let indoor = EnvProfile::paper_indoor_day();
    let report = sustainability(
        &indoor,
        &SolarHarvester::infiniwolf(),
        &TegHarvester::infiniwolf(),
        &DetectionBudget::paper(),
    );
    println!(
        "steady-state limit indoors: {:.1} detections/minute",
        report.detections_per_minute
    );

    run_scenario(
        "indoor day, sustainable fixed rate (80% of the limit)",
        &indoor,
        DetectionPolicy::FixedRate {
            per_minute: report.detections_per_minute * 0.8,
        },
        0.5,
    );
    run_scenario(
        "indoor day, greedy fixed rate (3x the limit)",
        &indoor,
        DetectionPolicy::FixedRate {
            per_minute: report.detections_per_minute * 3.0,
        },
        0.5,
    );

    // A dark week: the energy-aware policy throttles instead of dying.
    let dark_week = EnvProfile {
        segments: vec![EnvSegment {
            duration_s: 7.0 * 86_400.0,
            light: LightCondition::dark(),
            thermal: ThermalCondition::warm_room(),
        }],
    };
    run_scenario(
        "dark week, greedy fixed rate",
        &dark_week,
        DetectionPolicy::FixedRate { per_minute: 60.0 },
        0.9,
    );
    run_scenario(
        "dark week, energy-aware policy",
        &dark_week,
        DetectionPolicy::EnergyAware {
            max_per_minute: 60.0,
            min_soc: 0.15,
        },
        0.9,
    );
}
