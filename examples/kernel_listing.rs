//! Kernel listing: dump the *actual instruction programs* the deployment
//! generators emit for a tiny network — RISC-V (RI5CY, with hardware loops
//! and post-increment loads) and Thumb-2 (Cortex-M4) side by side — then
//! run both and confirm they agree with the golden reference bit-exactly.
//!
//! ```text
//! cargo run --release --example kernel_listing
//! ```

use iw_armv7m::asm::ThumbAsm;
use iw_fann::{FixedNet, Mlp};
use iw_kernels::layout::{place_fixed, Placement};
use iw_kernels::{emit_fixed_kernel, emit_m4_fixed_kernel, run_fixed, FixedTarget, RvKernelOpts};
use iw_mrwolf::memmap::{L2_BASE, TCDM_BASE};
use iw_nrf52::{FLASH_BASE, RAM_BASE};
use iw_rv32::asm::Asm;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately tiny network so the listing stays readable.
    let mut net = Mlp::new(&[2, 3, 2]);
    net.randomize_weights(&mut StdRng::seed_from_u64(5), 0.5);
    let fixed = FixedNet::export(&net)?;
    println!(
        "network 2-3-2, decimal point {}, {} weights\n",
        fixed.decimal_point,
        fixed.num_weights()
    );

    // --- RISC-V (single RI5CY) ---
    let placement: Placement = place_fixed(&fixed, TCDM_BASE + 0x1000, TCDM_BASE);
    let mut asm = Asm::new(L2_BASE);
    emit_fixed_kernel(&mut asm, &fixed, &placement, &RvKernelOpts::riscy());
    println!("=== RI5CY kernel ({} instructions) ===", asm.len());
    for (i, instr) in asm.instructions()?.iter().enumerate() {
        println!("{:5}:  {instr}", L2_BASE as usize + 4 * i);
    }

    // --- Cortex-M4 ---
    let m4_placement = place_fixed(&fixed, FLASH_BASE + 0x4000, RAM_BASE);
    let mut thumb = ThumbAsm::new();
    emit_m4_fixed_kernel(&mut thumb, &fixed, &m4_placement);
    let program = thumb.finish()?;
    println!(
        "\n=== Cortex-M4 kernel ({} instructions) ===",
        program.len()
    );
    for (i, instr) in program.iter().enumerate() {
        println!("{i:5}:  {instr}");
    }

    // --- Run both and compare with the reference ---
    let input = fixed.quantize_input(&[0.4, -0.7]);
    let reference = fixed.forward(&input);
    let riscy = run_fixed(FixedTarget::WolfRiscy, &fixed, &input)?;
    let m4 = run_fixed(FixedTarget::CortexM4, &fixed, &input)?;
    println!("\nreference outputs: {reference:?}");
    println!("RI5CY:  {:?} in {} cycles", riscy.outputs, riscy.cycles);
    println!("M4:     {:?} in {} cycles", m4.outputs, m4.cycles);
    assert_eq!(riscy.outputs, reference);
    assert_eq!(m4.outputs, reference);
    println!("bit-exact on both targets ✓");
    Ok(())
}
