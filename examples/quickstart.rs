//! Quickstart: train the stress detector, deploy it to Mr. Wolf's cluster,
//! and check whether a day of indoor light keeps it self-sustained.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use infiniwolf::{measure_detection_budget, sustainability, train_stress_pipeline, PipelineConfig};
use iw_harvest::{EnvProfile, SolarHarvester, TegHarvester};
use iw_kernels::FixedTarget;
use iw_sensors::{generate_dataset, DatasetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train Network A on the synthetic stress dataset.
    let cfg = PipelineConfig {
        dataset: DatasetConfig {
            windows_per_level: 15,
            window_s: 45.0,
            ..DatasetConfig::default()
        },
        ..PipelineConfig::default()
    };
    println!("training Network A (5-50-50-3) with RPROP…");
    let pipeline = train_stress_pipeline(&cfg)?;
    println!(
        "  {} epochs, mse {:.4}, train acc {:.1}%, test acc {:.1}%",
        pipeline.epochs,
        pipeline.mse,
        pipeline.train_accuracy * 100.0,
        pipeline.test_accuracy * 100.0
    );

    // 2. Classify a fresh window with the fixed-point deployment.
    let fresh = generate_dataset(
        &mut StdRng::seed_from_u64(99),
        &DatasetConfig {
            windows_per_level: 1,
            window_s: 45.0,
            ..cfg.dataset.clone()
        },
    );
    for window in &fresh {
        let predicted = pipeline.classify_window(window);
        println!(
            "  window labelled '{}' → classified '{predicted}'",
            window.level
        );
    }

    // 3. Energy budget of one detection, classification on 8 RI5CY cores.
    let input = pipeline.quantized_input(&fresh[0]);
    let budget = measure_detection_budget(
        &pipeline.fixed,
        &input,
        FixedTarget::WolfCluster { cores: 8 },
    )?;
    println!(
        "per-detection energy: {:.1} µJ (acquire {:.0} + features {:.1} + classify {:.2})",
        budget.total_uj(),
        budget.acquisition_j * 1e6,
        budget.features_j * 1e6,
        budget.classification_j * 1e6,
    );

    // 4. Persist the trained detector as a deployment bundle and reload it.
    let bundle = infiniwolf::write_bundle(&pipeline);
    let deployed = infiniwolf::read_bundle(&bundle)?;
    assert_eq!(
        deployed.classify_window(&fresh[0]),
        pipeline.classify_window(&fresh[0])
    );
    println!(
        "deployment bundle: {} bytes, reloads and classifies identically",
        bundle.len()
    );

    // 5. Self-sustainability in the paper's indoor scenario.
    let report = sustainability(
        &EnvProfile::paper_indoor_day(),
        &SolarHarvester::infiniwolf(),
        &TegHarvester::infiniwolf(),
        &budget,
    );
    println!(
        "harvesting {:.2} J/day indoors → {:.1} detections/minute self-sustained",
        report.intake_j_per_day, report.detections_per_minute
    );
    Ok(())
}
