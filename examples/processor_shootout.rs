//! Processor shoot-out: the paper's Table III/IV experiment — both
//! evaluation networks on the ARM Cortex-M4, the Ibex fabric controller, a
//! single RI5CY core and the 8-core cluster, plus the float/fixed
//! comparison on the M4F.
//!
//! ```text
//! cargo run --release --example processor_shootout
//! ```

use iw_fann::presets::{network_a, network_b};
use iw_fann::{FixedNet, Footprint};
use iw_kernels::{run_fixed, run_m4_float, FixedTarget};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    for (name, mut net) in [("Network A", network_a()), ("Network B", network_b())] {
        net.randomize_weights(&mut rng, 0.1);
        let fp = Footprint::of(&net);
        println!(
            "\n{name}: {} neurons, {} weights, {:.1} KiB",
            fp.neurons,
            fp.weights,
            fp.kib()
        );
        let fixed = FixedNet::export(&net)?;
        let input: Vec<f32> = (0..net.num_inputs())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let qin = fixed.quantize_input(&input);

        let reference = fixed.forward(&qin);
        let mut m4_cycles = 0u64;
        for target in FixedTarget::paper_targets() {
            let run = run_fixed(target, &fixed, &qin)?;
            assert_eq!(run.outputs, reference, "{target:?} diverged!");
            if target == FixedTarget::CortexM4 {
                m4_cycles = run.cycles;
            }
            println!(
                "  {:<18} {:>9} cycles  {:>8.2} µJ  {:>5.2}x vs M4",
                target.name(),
                run.cycles,
                run.energy_j * 1e6,
                m4_cycles as f64 / run.cycles as f64,
            );
        }
        if name == "Network A" {
            let float = run_m4_float(&net, &input)?;
            println!(
                "  {:<18} {:>9} cycles  {:>8.2} µJ  (float is {:.2}x slower than fixed)",
                "M4F float (FPU)",
                float.cycles,
                float.energy_j * 1e6,
                float.cycles as f64 / m4_cycles as f64,
            );
        }
    }
    println!("\nall targets produced bit-identical fixed-point outputs ✓");
    Ok(())
}
