#!/usr/bin/env bash
# Repo gate: formatting, lints (warnings are errors), docs, full test
# suite, and a smoke run of the headline experiment tables.
# Run before pushing; CI runs exactly this.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
# Docs must build warning-free for our crates (the vendored offline
# stubs under vendor/ are excluded — not ours to lint).
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
  -p iw-trace -p iw-power -p iw-rv32 -p iw-armv7m -p iw-mrwolf -p iw-nrf52 \
  -p iw-fann -p iw-kernels -p iw-harvest -p iw-sensors -p iw-sim -p iw-fault \
  -p iw-metrics -p iw-scenario -p iw-policy -p infiniwolf -p iw-biosig -p iw-bench
cargo test --workspace -q

# Smoke: the registry-driven tables must regenerate the headline rows
# (Tables III/IV plus the A2/A7 ablations, the D1 cluster cycle
# accounting and the D2 fleet sweep) without faulting, plus the D3
# reliability sweep with fault injection and the D4 epidemic scenario
# sweep. Byte-level drift is caught by bench/tests/golden_tables.rs,
# golden_d3.rs and golden_d4.rs.
cargo run --release -q -p iw-bench --bin tables -- t3 t4 a2 a7 d1 d2 d3 d4 >/dev/null

# Smoke: the tracing layer must produce a valid Perfetto timeline with
# one track per cluster core and a non-empty hotspot report for the
# 8-core RI5CY target on Network A (--check exits non-zero otherwise).
cargo run --release -q -p iw-bench --bin trace -- neta cl8 --check >/dev/null

# Smoke: every registered target must be bit-identical on all three
# interpreter paths (uncached reference, pre-decoded, block-compiled
# superinstructions) on both evaluation networks — the semantic gate for
# the block-cache layer, without Criterion's timing cost.
cargo bench -q -p iw-bench --bench iss_bench -- --check >/dev/null

# Smoke: the discrete-event fleet runner must produce bit-identical
# aggregates on 1 and 8 worker threads (--check exits non-zero on any
# digest mismatch) — the determinism gate for the co-simulation engine.
cargo run --release -q -p iw-bench --bin fleet -- --devices 64 --threads 8 --check >/dev/null

# Smoke: the same determinism gate with the harsh fault profile fully
# enabled — fault plans, BLE loss/retry streams, gauge noise and the
# brownout state machine must not break thread-count invariance.
cargo run --release -q -p iw-bench --bin fleet -- --devices 64 --faults harsh --check >/dev/null

# Smoke: the streaming coordinator/worker service — two worker processes
# stream 4096 devices as binary record frames with heartbeat telemetry
# interleaved, the coordinator re-folds every record, merges the shard
# aggregates hierarchically, exports the fleet metrics snapshot, and the
# digest must be bit-identical to the in-process single-thread reference
# (--check exits non-zero otherwise). The exposition itself is pinned
# byte-for-byte by bench/tests/golden_metrics.rs; here we just require
# that the export is present and carries histogram buckets.
cargo run --release -q -p iw-bench --bin fleet -- \
  --devices 4096 --workers 2 --metrics /tmp/iw_fleet_metrics.prom --check >/dev/null
grep -q "fleet_device_uptime_ppm_bucket" /tmp/iw_fleet_metrics.prom
rm -f /tmp/iw_fleet_metrics.prom

# Smoke: the Pareto policy search on a tiny grid — 5 candidates × 64
# devices on the harsh stress cell. --check re-runs the sweep under a
# different thread count and exits non-zero unless every per-candidate
# digest and the search digest match AND at least one adaptive policy
# dominates the aware-24 baseline. The full table is pinned
# byte-for-byte by bench/tests/golden_d5.rs.
cargo run --release -q -p iw-bench --bin policy-search -- \
  --devices 64 --candidates 5 --no-out --check >/dev/null

# Smoke: the networked-scenario engine — two worker processes play the
# compiled epidemic scenario (mobility contacts via BLE scans, weather
# fronts, gateway outages), stream scenario-bearing v3 records with
# epoch-beat telemetry interleaved, and the coordinator's epidemic fold
# over the merged edge set must land on a digest bit-identical to the
# in-process single-thread reference (--check exits non-zero otherwise).
cargo run --release -q -p iw-bench --bin fleet -- \
  --scenario epidemic --devices 256 --workers 2 --check >/dev/null
