#!/usr/bin/env bash
# Repo gate: formatting, lints (warnings are errors), full test suite.
# Run before pushing; CI runs exactly this.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
